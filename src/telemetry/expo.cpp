#include "telemetry/expo.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace adsec::telemetry {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = "adsec_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string metrics_prometheus_text() {
  const MetricsSnapshot snap = metrics_snapshot();
  // One (name, body) block per metric so the output sorts stably by
  // exposition name regardless of registration order.
  std::vector<std::pair<std::string, std::string>> blocks;
  char buf[128];

  for (const auto& [name, value] : snap.counters) {
    const std::string n = sanitize(name);
    std::string body = "# TYPE " + n + " counter\n";
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(value));
    body += n + buf;
    blocks.emplace_back(n, std::move(body));
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = sanitize(name);
    std::string body = "# TYPE " + n + " gauge\n";
    body += n + " " + fmt_double(value) + "\n";
    blocks.emplace_back(n, std::move(body));
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string n = sanitize(h.name);
    std::string body = "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      std::snprintf(buf, sizeof buf, "\"} %llu\n",
                    static_cast<unsigned long long>(cumulative));
      body += n + "_bucket{le=\"" + fmt_double(h.bounds[i]) + buf;
    }
    std::snprintf(buf, sizeof buf, "_bucket{le=\"+Inf\"} %llu\n",
                  static_cast<unsigned long long>(h.count));
    body += n + buf;
    body += n + "_sum " + fmt_double(h.sum) + "\n";
    std::snprintf(buf, sizeof buf, "_count %llu\n",
                  static_cast<unsigned long long>(h.count));
    body += n + buf;
    blocks.emplace_back(n, std::move(body));
  }

  std::sort(blocks.begin(), blocks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (const auto& [n, body] : blocks) out += body;
  return out;
}

void PeriodicSnapshotWriter::start(const std::string& path, int interval_ms) {
  if (thread_.joinable() || interval_ms <= 0) return;
  {
    MutexLock lock(mutex_);
    stop_ = false;
  }
  thread_ = std::thread([this, path, interval_ms] { loop(path, interval_ms); });
}

void PeriodicSnapshotWriter::stop() {
  if (!thread_.joinable()) return;
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void PeriodicSnapshotWriter::loop(std::string path, int interval_ms) {
  set_thread_name("telemetry.snapshot");
  const std::string tmp = path + ".tmp";
  auto write_once = [&] {
    if (!write_metrics_json(tmp)) return;
    std::rename(tmp.c_str(), path.c_str());
  };
  UniqueLock lock(mutex_);
  for (;;) {
    // Manual timed wait (a predicate lambda would be analyzed as a separate
    // function and could not see that mutex_ is held): sleep until stop_
    // flips or the interval elapses.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(interval_ms);
    while (!stop_ &&
           cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
    const bool stopping = stop_;
    // Snapshot I/O happens outside the lock so stop() never stalls behind
    // a slow disk write.
    lock.unlock();
    write_once();
    if (stopping) return;
    lock.lock();
  }
}

}  // namespace adsec::telemetry
