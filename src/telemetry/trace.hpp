// Profiling spans recorded into per-thread ring buffers, exportable as
// Chrome trace-event JSON (open in Perfetto / chrome://tracing).
//
//   void Trainer::update() {
//     ADSEC_SPAN("trainer.update");
//     ...
//   }
//
// The span name must be a string literal (or otherwise outlive the
// process) — only the pointer is stored. When tracing is disabled (the
// default) a span costs one relaxed load and a branch; when enabled, span
// exit takes the owning thread's ring mutex (uncontended except during
// export) and appends one 24-byte event. Each ring holds the most recent
// kTraceRingCapacity spans of its thread; older events are overwritten, so
// a trace is a sliding window, not an unbounded log.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace adsec::telemetry {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}

inline constexpr std::size_t kTraceRingCapacity = 1 << 14;

void set_tracing_enabled(bool on);
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

// Append one completed span to the calling thread's ring.
void record_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

// RAII scope: stamps begin at construction (if tracing is on) and records
// at destruction. Spans that straddle a disable are still recorded.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      begin_ = now_ns();
    }
  }
  ~SpanGuard() {
    if (name_ != nullptr) record_span(name_, begin_, now_ns());
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  static std::uint64_t now_ns();
  const char* name_{nullptr};
  std::uint64_t begin_{0};
};

#define ADSEC_SPAN_CONCAT2(a, b) a##b
#define ADSEC_SPAN_CONCAT(a, b) ADSEC_SPAN_CONCAT2(a, b)
// Profile the enclosing scope under `name` (a string literal).
#define ADSEC_SPAN(name) \
  ::adsec::telemetry::SpanGuard ADSEC_SPAN_CONCAT(adsec_span_, __LINE__)(name)

// Total events currently buffered across all threads' rings.
std::size_t trace_event_count();

// Serialize all buffered spans as a Chrome trace-event JSON document
// ({"traceEvents": [{"name", "ph": "X", "ts", "dur", "pid", "tid"}, ...]}),
// timestamps in microseconds on the shared telemetry clock.
std::string chrome_trace_json();

// Write chrome_trace_json() to `path`. Returns false on I/O error.
bool write_chrome_trace(const std::string& path);

// Drop all buffered spans (registrations and rings stay). For tests.
void clear_trace();

}  // namespace adsec::telemetry
