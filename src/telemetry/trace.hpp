// Causal profiling spans recorded into per-thread ring buffers, exportable
// as Chrome trace-event JSON (open in Perfetto / chrome://tracing) and as a
// per-trace JSONL view.
//
//   void Trainer::update() {
//     ADSEC_SPAN("trainer.update");
//     ...
//   }
//
// Every span carries a TraceContext (trace_id, span_id, parent_span_id).
// A span opened while another span is live on the same thread parents to
// it; a span opened on a bare thread roots a new trace. Work that hops
// threads stays causally linked: thread_pool::submit captures the
// submitter's context and the executing worker adopts it (TraceContextScope),
// so a stolen task's span parents to the *submitting* span, not to whatever
// the stealing worker happened to be running. The Chrome export adds flow
// events ("s"/"f" phases) for every cross-thread parent edge and "M"
// metadata records carrying registered thread names.
//
// The span name must be a lowercase dotted string literal ("subsystem.verb",
// enforced by adsec_lint) — only the pointer is stored. When span collection
// is fully disabled (the default) a span costs one relaxed load and a
// branch; when enabled, span exit takes the owning thread's ring mutex
// (uncontended except during export) and appends one 48-byte event. Each
// ring holds the most recent kTraceRingCapacity spans of its thread; older
// events are overwritten, so a trace is a sliding window, not an unbounded
// log.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace adsec::telemetry {

namespace detail {
// One word gates every span site: bit0 = tracing rings, bit1 = the flight
// recorder (flight.hpp). A single relaxed load keeps the disabled path
// inside the ≤5 ns/op budget no matter how many collectors exist.
inline constexpr unsigned kTraceBit = 1u;
inline constexpr unsigned kFlightBit = 2u;
extern std::atomic<unsigned> g_span_bits;
}  // namespace detail

inline constexpr std::size_t kTraceRingCapacity = 1 << 14;

void set_tracing_enabled(bool on);
inline bool tracing_enabled() {
  return (detail::g_span_bits.load(std::memory_order_relaxed) &
          detail::kTraceBit) != 0;
}
// True when any span collector (tracing rings or flight recorder) is on.
inline bool span_collection_enabled() {
  return detail::g_span_bits.load(std::memory_order_relaxed) != 0;
}

// Causal identity of one unit of work. trace_id groups a whole request /
// grid run; span_id identifies the innermost live span; 0 means "none".
struct TraceContext {
  std::uint64_t trace_id{0};
  std::uint64_t span_id{0};
  std::uint64_t parent_span_id{0};
};

// The calling thread's current context (all-zero on a bare thread).
TraceContext current_trace_context();
void set_trace_context(const TraceContext& ctx);

// Fresh process-unique ids (never 0).
std::uint64_t new_trace_id();
std::uint64_t new_span_id();

// RAII adoption of a foreign context: the thread pool wraps every queued
// task in one of these so the worker inherits the submitter's context and
// restores its own on exit.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx)
      : saved_(current_trace_context()) {
    set_trace_context(ctx);
  }
  ~TraceContextScope() { set_trace_context(saved_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

// Append one completed span (no causal ids) to the calling thread's ring.
// Prefer SpanGuard; this exists for hand-stamped intervals in tests.
void record_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

// RAII scope: derives a child context from the thread's current one (or
// roots a new trace on a bare thread), installs itself as current, stamps
// begin at construction, and records at destruction. The two-argument form
// parents to an explicit foreign context instead (serve: the admit span
// recorded on the submitting thread). Spans that straddle a disable are
// still recorded.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (span_collection_enabled()) enter(name, nullptr);
  }
  SpanGuard(const char* name, const TraceContext& parent) {
    if (span_collection_enabled()) enter(name, &parent);
  }
  ~SpanGuard() {
    if (name_ != nullptr) finish();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  void enter(const char* name, const TraceContext* parent);
  void finish();
  const char* name_{nullptr};
  std::uint64_t begin_{0};
  TraceContext saved_{};
  TraceContext self_{};
};

#define ADSEC_SPAN_CONCAT2(a, b) a##b
#define ADSEC_SPAN_CONCAT(a, b) ADSEC_SPAN_CONCAT2(a, b)
// Profile the enclosing scope under `name` (a lowercase dotted literal).
#define ADSEC_SPAN(name) \
  ::adsec::telemetry::SpanGuard ADSEC_SPAN_CONCAT(adsec_span_, __LINE__)(name)

// Register a human-readable name for the calling thread (dense tid from
// clock.hpp). Exported as Chrome "M"/thread_name metadata records and in
// the per-trace JSONL view.
void set_thread_name(const std::string& name);
// The registered name for `tid`, or "" if none.
std::string thread_name(int tid);

// Total events currently buffered across all threads' rings.
std::size_t trace_event_count();

// One buffered span, resolved for export.
struct SpanRecord {
  std::string name;
  std::uint64_t trace_id{0};
  std::uint64_t span_id{0};
  std::uint64_t parent_span_id{0};
  std::uint64_t begin_ns{0};
  std::uint64_t end_ns{0};
  int tid{0};
  std::string thread;  // registered thread name, "" if unregistered
};

// Snapshot all buffered spans, sorted by (trace_id, begin_ns, span_id) so
// each trace's spans are contiguous.
std::vector<SpanRecord> collect_spans();
// Just the spans of one trace, same ordering.
std::vector<SpanRecord> collect_trace(std::uint64_t trace_id);

// Serialize all buffered spans as a Chrome trace-event JSON document:
// "X" duration events with trace/span ids in args, "M" thread_name
// metadata records, and "s"/"f" flow events for every cross-thread parent
// edge; timestamps in microseconds on the shared telemetry clock.
std::string chrome_trace_json();

// Write chrome_trace_json() to `path`. Returns false on I/O error.
bool write_chrome_trace(const std::string& path);

// Write the per-trace JSONL view to `path`: one JSON object per span,
// grouped by trace. Returns false on I/O error.
bool write_trace_jsonl(const std::string& path);

// Drop all buffered spans (registrations and rings stay). For tests.
void clear_trace();

}  // namespace adsec::telemetry
