#include "telemetry/trace.hpp"

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/events.hpp"  // json_quote

namespace adsec::telemetry {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}

namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
};

// One ring per thread, guarded by its own mutex. The owner thread appends;
// the exporter walks all rings under the same per-ring mutex. Span
// granularity in this codebase is microseconds-to-seconds, so an
// uncontended lock per span exit is noise.
struct Ring {
  std::mutex mutex;
  int tid;
  std::vector<TraceEvent> events;  // circular once full
  std::size_t next{0};             // write cursor
  bool wrapped{false};
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
};

TraceRegistry& registry() {
  // Leaked on purpose: usable during static dtors. adsec-lint: allow(alloc-hygiene)
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>();
    r->tid = current_tid();
    r->events.reserve(1024);
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

void set_tracing_enabled(bool on) {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t SpanGuard::now_ns() { return monotonic_ns(); }

void record_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.events.size() < kTraceRingCapacity && !ring.wrapped) {
    ring.events.push_back({name, begin_ns, end_ns});
    if (ring.events.size() == kTraceRingCapacity) {
      ring.wrapped = true;  // from now on overwrite in place
      ring.next = 0;
    }
  } else {
    ring.events[ring.next] = {name, begin_ns, end_ns};
    ring.next = (ring.next + 1) % kTraceRingCapacity;
  }
}

std::size_t trace_event_count() {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t n = 0;
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> rlock(ring->mutex);
    n += ring->events.size();
  }
  return n;
}

std::string chrome_trace_json() {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  // Fixed-size buffer for the numeric tail only; the name goes through
  // json_quote so any characters (and any length) survive as valid JSON.
  char buf[128];
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> rlock(ring->mutex);
    for (const TraceEvent& e : ring->events) {
      const double ts_us = static_cast<double>(e.begin_ns) / 1000.0;
      const double dur_us = static_cast<double>(e.end_ns - e.begin_ns) / 1000.0;
      out += first ? "\n" : ",\n";
      out += "{\"name\": ";
      out += json_quote(e.name);
      std::snprintf(buf, sizeof buf,
                    ", \"cat\": \"adsec\", \"ph\": \"X\", "
                    "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d}",
                    ts_us, dur_us, ring->tid);
      out += buf;
      first = false;
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string doc = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void clear_trace() {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& ring : reg.rings) {
    std::lock_guard<std::mutex> rlock(ring->mutex);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
}

}  // namespace adsec::telemetry
