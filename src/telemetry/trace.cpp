#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/events.hpp"  // json_quote
#include "telemetry/flight.hpp"

namespace adsec::telemetry {

namespace detail {
std::atomic<unsigned> g_span_bits{0};
}

namespace {

thread_local TraceContext tl_ctx;

std::atomic<std::uint64_t> g_next_trace_id{1};
std::atomic<std::uint64_t> g_next_span_id{1};

struct TraceEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  std::uint64_t trace_id;
  std::uint64_t span_id;
  std::uint64_t parent_span_id;
};

// One ring per thread, guarded by its own mutex. The owner thread appends;
// the exporter walks all rings under the same per-ring mutex. Span
// granularity in this codebase is microseconds-to-seconds, so an
// uncontended lock per span exit is noise.
struct Ring {
  Mutex ring_mu;
  int tid;  // set once at ring creation, before the ring is published
  std::vector<TraceEvent> events ADSEC_GUARDED_BY(ring_mu);  // circular once full
  std::size_t next ADSEC_GUARDED_BY(ring_mu){0};             // write cursor
  bool wrapped ADSEC_GUARDED_BY(ring_mu){false};
};

// Lock order: registry_mu before any ring_mu (the exporters walk rings
// while holding the registry lock); no path acquires them the other way.
struct TraceRegistry {
  Mutex registry_mu;
  std::vector<std::shared_ptr<Ring>> rings ADSEC_GUARDED_BY(registry_mu);
  std::map<int, std::string> thread_names ADSEC_GUARDED_BY(registry_mu);
};

TraceRegistry& registry() {
  // Leaked on purpose: usable during static dtors. adsec-lint: allow(alloc-hygiene)
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>();
    r->tid = current_tid();
    {
      // Not yet published, so the lock is uncontended; taken for uniform
      // analysis of the guarded vector.
      MutexLock lock(r->ring_mu);
      r->events.reserve(1024);
    }
    TraceRegistry& reg = registry();
    MutexLock lock(reg.registry_mu);
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

void push_event(const TraceEvent& e) {
  Ring& ring = local_ring();
  MutexLock lock(ring.ring_mu);
  if (ring.events.size() < kTraceRingCapacity && !ring.wrapped) {
    ring.events.push_back(e);
    if (ring.events.size() == kTraceRingCapacity) {
      ring.wrapped = true;  // from now on overwrite in place
      ring.next = 0;
    }
  } else {
    ring.events[ring.next] = e;
    ring.next = (ring.next + 1) % kTraceRingCapacity;
  }
}

// Snapshot every ring into one flat vector (tid attached per event).
std::vector<std::pair<int, TraceEvent>> snapshot_events() {
  std::vector<std::pair<int, TraceEvent>> out;
  TraceRegistry& reg = registry();
  MutexLock lock(reg.registry_mu);
  for (const auto& ring : reg.rings) {
    MutexLock rlock(ring->ring_mu);
    for (const TraceEvent& e : ring->events) out.emplace_back(ring->tid, e);
  }
  return out;
}

}  // namespace

void set_tracing_enabled(bool on) {
  if (on) {
    detail::g_span_bits.fetch_or(detail::kTraceBit, std::memory_order_relaxed);
  } else {
    detail::g_span_bits.fetch_and(~detail::kTraceBit,
                                  std::memory_order_relaxed);
  }
}

TraceContext current_trace_context() { return tl_ctx; }
void set_trace_context(const TraceContext& ctx) { tl_ctx = ctx; }

std::uint64_t new_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}
std::uint64_t new_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void SpanGuard::enter(const char* name, const TraceContext* parent) {
  name_ = name;
  saved_ = tl_ctx;
  const TraceContext& base = parent != nullptr ? *parent : saved_;
  if (base.trace_id == 0) {
    self_.trace_id = new_trace_id();  // bare thread: root a fresh trace
    self_.parent_span_id = 0;
  } else {
    self_.trace_id = base.trace_id;
    self_.parent_span_id = base.span_id;
  }
  self_.span_id = new_span_id();
  tl_ctx = self_;
  begin_ = monotonic_ns();
}

void SpanGuard::finish() {
  const std::uint64_t end = monotonic_ns();
  if (tracing_enabled()) {
    push_event({name_, begin_, end, self_.trace_id, self_.span_id,
                self_.parent_span_id});
  }
  if (flight_enabled()) flight_record_span(name_, begin_, end, self_);
  tl_ctx = saved_;
}

void record_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  push_event({name, begin_ns, end_ns, 0, 0, 0});
}

void set_thread_name(const std::string& name) {
  const int tid = current_tid();
  TraceRegistry& reg = registry();
  MutexLock lock(reg.registry_mu);
  reg.thread_names[tid] = name;
}

std::string thread_name(int tid) {
  TraceRegistry& reg = registry();
  MutexLock lock(reg.registry_mu);
  const auto it = reg.thread_names.find(tid);
  return it == reg.thread_names.end() ? std::string() : it->second;
}

std::size_t trace_event_count() {
  TraceRegistry& reg = registry();
  MutexLock lock(reg.registry_mu);
  std::size_t n = 0;
  for (const auto& ring : reg.rings) {
    MutexLock rlock(ring->ring_mu);
    n += ring->events.size();
  }
  return n;
}

std::vector<SpanRecord> collect_spans() {
  std::vector<SpanRecord> out;
  for (const auto& [tid, e] : snapshot_events()) {
    SpanRecord r;
    r.name = e.name;
    r.trace_id = e.trace_id;
    r.span_id = e.span_id;
    r.parent_span_id = e.parent_span_id;
    r.begin_ns = e.begin_ns;
    r.end_ns = e.end_ns;
    r.tid = tid;
    r.thread = thread_name(tid);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return std::tie(a.trace_id, a.begin_ns, a.span_id) <
                     std::tie(b.trace_id, b.begin_ns, b.span_id);
            });
  return out;
}

std::vector<SpanRecord> collect_trace(std::uint64_t trace_id) {
  std::vector<SpanRecord> all = collect_spans();
  std::vector<SpanRecord> out;
  for (auto& r : all) {
    if (r.trace_id == trace_id) out.push_back(std::move(r));
  }
  return out;
}

std::string chrome_trace_json() {
  const std::vector<std::pair<int, TraceEvent>> events = snapshot_events();

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  // Fixed-size buffer for the numeric tail only; the name goes through
  // json_quote so any characters (and any length) survive as valid JSON.
  char buf[256];
  auto emit = [&out, &first](const std::string& record) {
    out += first ? "\n" : ",\n";
    out += record;
    first = false;
  };

  // "M" metadata records first: dense tid -> registered worker name, so
  // Perfetto labels the tracks.
  {
    TraceRegistry& reg = registry();
    MutexLock lock(reg.registry_mu);
    for (const auto& [tid, name] : reg.thread_names) {
      std::string rec = "{\"name\": \"thread_name\", \"ph\": \"M\", "
                        "\"pid\": 1, \"tid\": ";
      std::snprintf(buf, sizeof buf, "%d", tid);
      rec += buf;
      rec += ", \"args\": {\"name\": ";
      rec += json_quote(name);
      rec += "}}";
      emit(rec);
    }
  }

  // span_id -> (tid, begin, end) for flow-event resolution. A parent whose
  // ring slot has been overwritten simply gets no flow arrow.
  std::map<std::uint64_t, std::pair<int, std::pair<std::uint64_t, std::uint64_t>>>
      by_span;
  for (const auto& [tid, e] : events) {
    if (e.span_id != 0) by_span[e.span_id] = {tid, {e.begin_ns, e.end_ns}};
  }

  for (const auto& [tid, e] : events) {
    const double ts_us = static_cast<double>(e.begin_ns) / 1000.0;
    const double dur_us = static_cast<double>(e.end_ns - e.begin_ns) / 1000.0;
    std::string rec = "{\"name\": ";
    rec += json_quote(e.name);
    std::snprintf(buf, sizeof buf,
                  ", \"cat\": \"adsec\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d",
                  ts_us, dur_us, tid);
    rec += buf;
    if (e.trace_id != 0) {
      std::snprintf(buf, sizeof buf,
                    ", \"args\": {\"trace_id\": %llu, \"span_id\": %llu, "
                    "\"parent_span_id\": %llu}",
                    static_cast<unsigned long long>(e.trace_id),
                    static_cast<unsigned long long>(e.span_id),
                    static_cast<unsigned long long>(e.parent_span_id));
      rec += buf;
    }
    rec += "}";
    emit(rec);

    // Cross-thread parent edge -> one "s"/"f" flow pair so Perfetto draws
    // the causal arrow between tracks.
    if (e.parent_span_id == 0) continue;
    const auto it = by_span.find(e.parent_span_id);
    if (it == by_span.end() || it->second.first == tid) continue;
    const int parent_tid = it->second.first;
    // The start step must land inside the parent slice for the UI to bind
    // it; clamp the child's begin into the parent's interval.
    const std::uint64_t clamped =
        std::min(std::max(e.begin_ns, it->second.second.first),
                 it->second.second.second);
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"adsec.flow\", \"cat\": \"adsec.flow\", "
                  "\"ph\": \"s\", \"id\": %llu, \"ts\": %.3f, "
                  "\"pid\": 1, \"tid\": %d}",
                  static_cast<unsigned long long>(e.span_id),
                  static_cast<double>(clamped) / 1000.0, parent_tid);
    emit(buf);
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"adsec.flow\", \"cat\": \"adsec.flow\", "
                  "\"ph\": \"f\", \"bp\": \"e\", \"id\": %llu, \"ts\": %.3f, "
                  "\"pid\": 1, \"tid\": %d}",
                  static_cast<unsigned long long>(e.span_id), ts_us, tid);
    emit(buf);
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string doc = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

bool write_trace_jsonl(const std::string& path) {
  const std::vector<SpanRecord> spans = collect_spans();
  std::string doc;
  char buf[256];
  for (const SpanRecord& r : spans) {
    std::snprintf(buf, sizeof buf,
                  "{\"trace_id\": %llu, \"span_id\": %llu, "
                  "\"parent_span_id\": %llu, \"name\": ",
                  static_cast<unsigned long long>(r.trace_id),
                  static_cast<unsigned long long>(r.span_id),
                  static_cast<unsigned long long>(r.parent_span_id));
    doc += buf;
    doc += json_quote(r.name);
    doc += ", \"thread\": ";
    doc += json_quote(r.thread);
    std::snprintf(buf, sizeof buf,
                  ", \"tid\": %d, \"begin_ns\": %llu, \"end_ns\": %llu, "
                  "\"dur_ns\": %llu}\n",
                  r.tid, static_cast<unsigned long long>(r.begin_ns),
                  static_cast<unsigned long long>(r.end_ns),
                  static_cast<unsigned long long>(r.end_ns - r.begin_ns));
    doc += buf;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void clear_trace() {
  TraceRegistry& reg = registry();
  MutexLock lock(reg.registry_mu);
  for (const auto& ring : reg.rings) {
    MutexLock rlock(ring->ring_mu);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
}

}  // namespace adsec::telemetry
