#include "control/lateral.hpp"

#include <cmath>

#include "common/angle.hpp"

namespace adsec {

double invert_actuation_blend(double desired, double current, double retain) {
  // Eq. 1: a_t = (1 - retain) * nu + retain * a_{t-1}. Solving for nu and
  // clipping to the mechanical limit gives the fastest admissible approach.
  const double nu = (desired - retain * current) / (1.0 - retain);
  return clamp(nu, -1.0, 1.0);
}

LateralController::LateralController(const LateralConfig& config)
    : config_(config), pid_(config.heading) {}

void LateralController::reset() { pid_.reset(); }

double LateralController::update(const Vehicle& ego, const PlanStep& plan,
                                 const Frenet& ego_frenet, double dt) {
  // Desired heading: toward the lookahead waypoint, biased by cross-track
  // error so steady-state offsets are pulled out even on curves.
  const double to_waypoint = plan.waypoint_dir.heading();
  const double cross_track = plan.target_d - ego_frenet.d;
  const double desired_heading =
      wrap_angle(to_waypoint + config_.cross_track_gain * cross_track);

  const double heading_err = angle_diff(desired_heading, ego.state().heading);
  const double desired_steer = pid_.update(heading_err, dt);  // normalized [-1,1]

  return invert_actuation_blend(desired_steer, ego.actuation().steer,
                                ego.params().alpha);
}

}  // namespace adsec
