#include "control/pid.hpp"

#include <stdexcept>

#include "common/angle.hpp"

namespace adsec {

Pid::Pid(const PidGains& gains) : gains_(gains) {
  if (gains.out_min >= gains.out_max) {
    throw std::invalid_argument("Pid: out_min must be < out_max");
  }
}

double Pid::update(double error, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("Pid: dt must be > 0");

  integral_ += error * dt;
  if (gains_.ki > 0.0) {
    const double lim = gains_.integral_limit / gains_.ki;
    integral_ = clamp(integral_, -lim, lim);
  }

  double derivative = 0.0;
  if (has_prev_) derivative = (error - prev_error_) / dt;
  prev_error_ = error;
  has_prev_ = true;

  const double out = gains_.kp * error + gains_.ki * integral_ + gains_.kd * derivative;
  return clamp(out, gains_.out_min, gains_.out_max);
}

void Pid::reset() {
  integral_ = 0.0;
  prev_error_ = 0.0;
  has_prev_ = false;
}

}  // namespace adsec
