// Longitudinal (speed) controller of the modular pipeline: PID on the speed
// error producing a thrust variation, inverted through Eq. 1 like the
// lateral controller.
#pragma once

#include "control/pid.hpp"
#include "sim/vehicle.hpp"

namespace adsec {

struct LongitudinalConfig {
  PidGains speed{0.35, 0.05, 0.0, -1.0, 1.0, 0.5};
};

class LongitudinalController {
 public:
  explicit LongitudinalController(const LongitudinalConfig& config = {});

  // Thrust variation gamma in [-1, 1] for this step.
  double update(const Vehicle& ego, double desired_speed, double dt);

  void reset();

 private:
  LongitudinalConfig config_;
  Pid pid_;
};

}  // namespace adsec
