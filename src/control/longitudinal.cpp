#include "control/longitudinal.hpp"

#include "control/lateral.hpp"  // invert_actuation_blend

namespace adsec {

LongitudinalController::LongitudinalController(const LongitudinalConfig& config)
    : config_(config), pid_(config.speed) {}

void LongitudinalController::reset() { pid_.reset(); }

double LongitudinalController::update(const Vehicle& ego, double desired_speed,
                                      double dt) {
  const double err = desired_speed - ego.state().speed;
  const double desired_thrust = pid_.update(err, dt);
  return invert_actuation_blend(desired_thrust, ego.actuation().thrust,
                                ego.params().eta);
}

}  // namespace adsec
