// Generic PID controller with clamped output and integral anti-windup.
// The modular driving pipeline (paper Sec. III-B) uses one longitudinal and
// one lateral instance; its per-step rectification of attack-induced
// deviations is the mechanism behind the pipeline's resilience result.
#pragma once

namespace adsec {

struct PidGains {
  double kp{0.0};
  double ki{0.0};
  double kd{0.0};
  double out_min{-1.0};
  double out_max{1.0};
  double integral_limit{1.0};  // |integral * ki| is clamped to this
};

class Pid {
 public:
  explicit Pid(const PidGains& gains);

  // One controller tick; `dt` must be > 0.
  double update(double error, double dt);

  void reset();
  const PidGains& gains() const { return gains_; }

 private:
  PidGains gains_;
  double integral_{0.0};
  double prev_error_{0.0};
  bool has_prev_{false};
};

}  // namespace adsec
