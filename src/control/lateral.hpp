// Lateral (steering) controller of the modular pipeline.
//
// PID on the heading error toward the planner's lookahead waypoint, plus a
// cross-track term. Because the plant applies Eq. 1 smoothing, the
// controller *inverts* Eq. 1 to command the steering variation nu that moves
// the applied actuation toward the desired value as fast as the mechanical
// limit allows — this is the "timely rectification" the paper credits for
// the modular agent's resilience.
#pragma once

#include "control/pid.hpp"
#include "planner/behavior.hpp"
#include "sim/vehicle.hpp"

namespace adsec {

struct LateralConfig {
  PidGains heading{3.2, 0.15, 0.25, -1.0, 1.0, 0.4};
  double cross_track_gain = 0.08;  // rad of desired heading per metre of offset
};

class LateralController {
 public:
  explicit LateralController(const LateralConfig& config = {});

  // Steering variation nu in [-1, 1] for this step.
  double update(const Vehicle& ego, const PlanStep& plan, const Frenet& ego_frenet,
                double dt);

  void reset();

 private:
  LateralConfig config_;
  Pid pid_;
};

// Invert Eq. 1: the variation that moves the applied actuation from
// `current` toward `desired` (both normalized), given retain rate `retain`.
double invert_actuation_blend(double desired, double current, double retain);

}  // namespace adsec
