#include "core/zoo.hpp"

#include <array>
#include <chrono>
#include <filesystem>
#include <thread>

#include "agents/driving_env.hpp"
#include "common/angle.hpp"
#include "attack/train_attack.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "defense/finetune.hpp"
#include "nn/io.hpp"
#include "rl/bc.hpp"
#include "rl/trainer.hpp"
#include "telemetry/telemetry.hpp"

namespace adsec {

namespace {

// Cache effectiveness of the policy zoo across one process. The three
// outcomes are disjoint — hit (loaded from cache), miss (no cache file),
// retrain (cache file present but unusable) — so hit + miss + retrain
// equals total lookups.
struct ZooMetrics {
  telemetry::Counter cache_hit = telemetry::counter("zoo.cache_hit");
  telemetry::Counter cache_miss = telemetry::counter("zoo.cache_miss");
  telemetry::Counter retrain = telemetry::counter("zoo.retrain");
  // Why a cache entry needed more than a plain load: io_transient counts
  // bounded in-process retries after an Error{Io} (the entry may be fine;
  // the *read* failed), corrupt counts entries whose bytes failed
  // validation (the entry is dead on arrival). A retrain is the sum of
  // corrupt entries and entries whose transient retries exhausted.
  telemetry::Counter cache_io_transient =
      telemetry::counter("zoo.cache_io_transient");
  telemetry::Counter cache_corrupt = telemetry::counter("zoo.cache_corrupt");
};

ZooMetrics& zoo_metrics() {
  static ZooMetrics m;
  return m;
}

// Deterministic return of a policy driving the given env.
double eval_policy_return(const GaussianPolicy& policy, Env& env, int episodes,
                          std::uint64_t seed_base) {
  double total = 0.0;
  Matrix obs_mat, act_mat;
  std::vector<double> act;
  for (int k = 0; k < episodes; ++k) {
    auto obs = env.reset(seed_base + static_cast<std::uint64_t>(k));
    bool done = false;
    while (!done) {
      row_into(obs_mat, obs);
      policy.mean_action_into(obs_mat, act_mat);
      act.assign(act_mat.data(), act_mat.data() + act_mat.cols());
      EnvStep s = env.step(act);
      total += s.reward;
      done = s.done;
      obs = std::move(s.obs);
    }
  }
  return total / episodes;
}

}  // namespace

PolicyZoo::PolicyZoo(std::string dir)
    : dir_(dir.empty() ? runtime_config().zoo_dir : std::move(dir)) {
  std::filesystem::create_directories(dir_);
  // Shared experiment configuration — the paper's scenario (Sec. III-A)
  // with the default rewards; every consumer reads these from the zoo so
  // training and evaluation always agree.
  experiment_ = ExperimentConfig{};
}

std::string PolicyZoo::path(const std::string& name) const {
  return dir_ + "/" + name + ".bin";
}

std::string PolicyZoo::ckpt_path(const std::string& name) const {
  return dir_ + "/" + name + ".ckpt";
}

void PolicyZoo::arm_checkpoint(TrainConfig& cfg, const std::string& name) const {
  const int every = runtime_config().checkpoint_every;
  if (every <= 0) return;
  cfg.checkpoint_every = every;
  cfg.checkpoint_path = ckpt_path(name);
  cfg.resume_from = cfg.checkpoint_path;
}

GaussianPolicy PolicyZoo::cached_or_train(const std::string& name,
                                          GaussianPolicy (PolicyZoo::*train)()) {
  // Single-flight: the first caller for `name` becomes the leader and does
  // the load/train; concurrent callers for the same name wait on the
  // leader's future instead of racing into a duplicate training run (or a
  // torn read of a half-written cache file).
  std::promise<GaussianPolicy> promise;
  std::shared_future<GaussianPolicy> future;
  bool leader = false;
  {
    MutexLock lock(inflight_mu_);
    auto it = inflight_.find(name);
    if (it == inflight_.end()) {
      leader = true;
      future = promise.get_future().share();
      inflight_.emplace(name, future);
    } else {
      future = it->second;
    }
  }
  if (!leader) {
    // Followers piggyback on the leader's result; the policy arrives
    // without touching disk, which the counters record as a hit.
    zoo_metrics().cache_hit.inc();
    telemetry::emit_event("zoo.single_flight_wait", {{"name", name}});
    return future.get();
  }
  try {
    GaussianPolicy policy = load_or_train(name, train);
    promise.set_value(policy);
    MutexLock lock(inflight_mu_);
    inflight_.erase(name);
    return policy;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      MutexLock lock(inflight_mu_);
      inflight_.erase(name);
    }
    throw;
  }
}

GaussianPolicy PolicyZoo::load_or_train(const std::string& name,
                                        GaussianPolicy (PolicyZoo::*train)()) {
  const std::string file = path(name);
  bool retraining = false;
  if (file_exists(file)) {
    log_debug("zoo: loading %s", file.c_str());
    // An Error{Io} loading the cache does not mean the entry is bad — the
    // bytes on disk may be fine and only this read failed. Retry a bounded
    // number of times with a short backoff before declaring the entry dead;
    // a full retrain costs minutes, a retry costs milliseconds.
    constexpr int kMaxLoadAttempts = 3;
    for (int attempt = 1; attempt <= kMaxLoadAttempts && !retraining;
         ++attempt) {
      try {
        GaussianPolicy policy = load_policy_file(file);
        zoo_metrics().cache_hit.inc();
        telemetry::emit_event("zoo.cache_hit", {{"name", name}});
        return policy;
      } catch (const Error& e) {
        if (e.code() == ErrorCode::Io && attempt < kMaxLoadAttempts) {
          zoo_metrics().cache_io_transient.inc();
          log_warn("zoo: transient I/O failure loading %s (attempt %d/%d): %s",
                   file.c_str(), attempt, kMaxLoadAttempts, e.what());
          std::this_thread::sleep_for(
              std::chrono::milliseconds(1 << (attempt - 1)));
          continue;
        }
        // A truncated or bit-rotted cache entry (or a read that keeps
        // failing) must not poison every consumer; the training that
        // produced it is deterministic, so retraining recreates the
        // identical policy.
        if (e.code() == ErrorCode::Corrupt) {
          zoo_metrics().cache_corrupt.inc();
        }
        log_warn("zoo: cached policy %s is unusable (%s); retraining",
                 file.c_str(), e.what());
        std::filesystem::remove(file);
        zoo_metrics().retrain.inc();
        retraining = true;
      }
    }
  }
  log_info("zoo: training %s (cache miss at %s)", name.c_str(), file.c_str());
  if (!retraining) zoo_metrics().cache_miss.inc();
  const std::uint64_t t0 = telemetry::monotonic_ns();
  GaussianPolicy policy = [&] {
    ADSEC_SPAN("zoo.train");
    return (this->*train)();
  }();
  save_policy_file(policy, file);
  // The finished policy supersedes any mid-training checkpoint.
  std::error_code ec;
  std::filesystem::remove(ckpt_path(name), ec);
  log_info("zoo: saved %s", file.c_str());
  telemetry::emit_event(
      "zoo.train",
      {{"name", name},
       {"duration_s", static_cast<double>(telemetry::monotonic_ns() - t0) / 1e9}});
  return policy;
}

GaussianPolicy PolicyZoo::driving_policy() {
  return cached_or_train("pi_ori", &PolicyZoo::train_driving_policy);
}

GaussianPolicy PolicyZoo::camera_attacker_vs_e2e() {
  return cached_or_train("attacker_cam_e2e", &PolicyZoo::train_camera_attacker_vs_e2e);
}

GaussianPolicy PolicyZoo::camera_attacker_vs_modular() {
  return cached_or_train("attacker_cam_modular",
                         &PolicyZoo::train_camera_attacker_vs_modular);
}

GaussianPolicy PolicyZoo::imu_attacker() {
  return cached_or_train("attacker_imu", &PolicyZoo::train_imu_attacker);
}

GaussianPolicy PolicyZoo::finetuned(double rho) {
  // Two published variants only (Sec. VI-A).
  if (rho < 0.2) return cached_or_train("finetune_r11", &PolicyZoo::train_finetuned_r11);
  return cached_or_train("finetune_r2", &PolicyZoo::train_finetuned_r2);
}

GaussianPolicy PolicyZoo::pnn_column() {
  return cached_or_train("pnn_column", &PolicyZoo::train_pnn_column);
}

Mlp PolicyZoo::td3_attacker() {
  // Same single-flight discipline as cached_or_train, specialised to the
  // one Mlp entry: serialize lookups so concurrent callers never train the
  // TD3 actor twice or read a half-written cache file.
  MutexLock guard(td3_mu_);
  const std::string file = path("attacker_cam_td3");
  if (file_exists(file)) {
    try {
      return load_mlp_file(file);
    } catch (const Error& e) {
      log_warn("zoo: cached policy %s is unusable (%s); retraining", file.c_str(),
               e.what());
      std::filesystem::remove(file);
    }
  }
  log_info("zoo: training attacker_cam_td3 (cache miss at %s)", file.c_str());
  auto victim = std::make_shared<E2EAgent>(driving_policy(), camera_, frame_stack_);
  Td3AttackSpec spec = default_td3_attack_spec(1.0);
  spec.env.scenario = experiment_.scenario;
  spec.env.camera = camera_;
  spec.env.reward = experiment_.adv_reward;
  Mlp actor = train_td3_attacker(spec, std::move(victim));
  save_mlp_file(actor, file);
  return actor;
}

// ---------------------------------------------------------------- training

GaussianPolicy PolicyZoo::train_driving_policy() {
  // Phase 1 — behaviour cloning from the modular pipeline (the privileged
  // teacher): collect (stacked camera obs, expert variation) pairs.
  const int bc_episodes = std::max(4, scaled_steps(24));
  StackedCameraObserver observer(camera_, frame_stack_);
  ModularAgent expert;

  // DAgger-style collection: the *executed* action carries exploration
  // noise so the dataset covers off-nominal states, while the *label* stays
  // the expert's clean action — this is what keeps the cloned policy from
  // drifting off the expert distribution at run time.
  Rng noise_rng(555);
  std::vector<std::vector<double>> obs_rows;
  std::vector<std::array<double, 2>> act_rows;
  for (int ep = 0; ep < bc_episodes; ++ep) {
    Rng rng(1000 + static_cast<std::uint64_t>(ep));
    World world = make_scenario(experiment_.scenario, rng);
    expert.reset(world);
    observer.reset(world);
    const double noise = (ep % 3 == 0) ? 0.0 : 0.15;  // keep clean episodes too
    while (!world.done()) {
      const auto obs = observer.observe(world);
      const Action a = expert.decide(world);
      obs_rows.push_back(obs);
      act_rows.push_back({a.steer_variation, a.thrust_variation});
      Action executed = a;
      executed.steer_variation =
          clamp(a.steer_variation + noise_rng.normal(0.0, noise), -1.0, 1.0);
      executed.thrust_variation =
          clamp(a.thrust_variation + noise_rng.normal(0.0, noise), -1.0, 1.0);
      world.step(executed);
    }
  }
  log_info("zoo: BC dataset: %zu transitions from %d expert episodes",
           obs_rows.size(), bc_episodes);

  const int obs_dim = static_cast<int>(obs_rows.front().size());
  Matrix obs_m(static_cast<int>(obs_rows.size()), obs_dim);
  Matrix act_m(static_cast<int>(act_rows.size()), 2);
  for (std::size_t i = 0; i < obs_rows.size(); ++i) {
    for (int j = 0; j < obs_dim; ++j) obs_m(static_cast<int>(i), j) = obs_rows[i][static_cast<std::size_t>(j)];
    act_m(static_cast<int>(i), 0) = clamp(act_rows[i][0], -0.999, 0.999);
    act_m(static_cast<int>(i), 1) = clamp(act_rows[i][1], -0.999, 0.999);
  }

  Rng rng(2024);
  GaussianPolicy policy = GaussianPolicy::make_mlp(obs_dim, {64, 64}, 2, rng);
  BcConfig bc;
  bc.epochs = std::max(5, scaled_steps(40));
  const BcResult bc_res = bc_train(policy, obs_m, act_m, bc);
  log_info("zoo: BC final action MSE %.4f", bc_res.epoch_losses.back());

  // Phase 2 — SAC fine-tuning under the shaped privileged reward.
  DrivingEnv env(experiment_.scenario, camera_, experiment_.driving_reward,
                 experiment_.reference_planner, frame_stack_);
  SacConfig sac_cfg;
  sac_cfg.batch_size = 32;
  sac_cfg.actor_lr = 1e-4;
  sac_cfg.critic_lr = 1e-3;
  sac_cfg.init_alpha = 0.01;
  sac_cfg.auto_alpha = false;  // keep the entropy pressure gentle when
                               // fine-tuning the behaviour-cloned policy
  sac_cfg.actor_delay_updates = scaled_steps(1500, 50);
  TrainConfig train_cfg;
  train_cfg.total_steps = scaled_steps(60000, 200);
  train_cfg.start_steps = 0;  // the BC policy explores better than noise
  train_cfg.update_after = scaled_steps(300, 20);
  train_cfg.eval_every = scaled_steps(3000, 100);
  train_cfg.eval_episodes = 3;
  train_cfg.plateau_eps = 3.0;
  train_cfg.plateau_patience = 5;
  train_cfg.seed = 7;
  arm_checkpoint(train_cfg, "pi_ori");

  Rng sac_rng(train_cfg.seed);
  Sac sac(policy, sac_cfg, sac_rng);
  const TrainResult tr = train_sac(sac, env, train_cfg);

  // Deploy the best of {BC warm start, SAC final iterate, SAC best-eval
  // snapshot}, scored on held-out seeds — SAC fine-tuning can only improve
  // the deployed policy, never regress it.
  GaussianPolicy best = policy;
  double best_ret = eval_policy_return(policy, env, 10, 555000);
  const GaussianPolicy* candidates[] = {
      &sac.actor(), tr.best_actor ? &*tr.best_actor : nullptr};
  for (const GaussianPolicy* cand : candidates) {
    if (cand == nullptr) continue;
    const double ret = eval_policy_return(*cand, env, 10, 555000);
    if (ret > best_ret) {
      best_ret = ret;
      best = *cand;
    }
  }
  log_info("zoo: driving policy deployed return %.1f", best_ret);
  return best;
}

GaussianPolicy PolicyZoo::train_camera_attacker_vs_e2e() {
  auto victim = std::make_shared<E2EAgent>(driving_policy(), camera_, frame_stack_);
  AttackTrainSpec spec = default_attack_spec(AttackSensorType::Camera, 1.0);
  spec.env.scenario = experiment_.scenario;
  spec.env.camera = camera_;
  spec.env.reward = experiment_.adv_reward;
  arm_checkpoint(spec.train, "attacker_cam_e2e");
  return train_attacker(spec, std::move(victim));
}

GaussianPolicy PolicyZoo::train_camera_attacker_vs_modular() {
  auto victim = std::make_shared<ModularAgent>();
  AttackTrainSpec spec = default_attack_spec(AttackSensorType::Camera, 1.0);
  spec.env.scenario = experiment_.scenario;
  spec.env.camera = camera_;
  spec.env.reward = experiment_.adv_reward;
  spec.train.seed = 43;
  arm_checkpoint(spec.train, "attacker_cam_modular");
  return train_attacker(spec, std::move(victim));
}

GaussianPolicy PolicyZoo::train_imu_attacker() {
  auto victim = std::make_shared<E2EAgent>(driving_policy(), camera_, frame_stack_);
  const GaussianPolicy teacher = camera_attacker_vs_e2e();
  AttackTrainSpec spec = default_attack_spec(AttackSensorType::Imu, 1.0);
  spec.env.scenario = experiment_.scenario;
  spec.env.camera = camera_;  // teacher pipeline
  spec.env.imu = imu_;
  spec.env.reward = experiment_.adv_reward;
  spec.train.seed = 44;
  arm_checkpoint(spec.train, "attacker_imu");
  return train_attacker(spec, std::move(victim), &teacher);
}

GaussianPolicy PolicyZoo::imu_attacker_no_pse() {
  return cached_or_train("attacker_imu_nopse", &PolicyZoo::train_imu_attacker_no_pse);
}

GaussianPolicy PolicyZoo::imu_attacker_pure_sac() {
  return cached_or_train("attacker_imu_puresac",
                         &PolicyZoo::train_imu_attacker_pure_sac);
}

GaussianPolicy PolicyZoo::train_imu_attacker_no_pse() {
  auto victim = std::make_shared<E2EAgent>(driving_policy(), camera_, frame_stack_);
  AttackTrainSpec spec = default_attack_spec(AttackSensorType::Imu, 1.0);
  spec.env.scenario = experiment_.scenario;
  spec.env.imu = imu_;
  spec.env.reward = experiment_.adv_reward;
  spec.train.seed = 45;
  arm_checkpoint(spec.train, "attacker_imu_nopse");
  return train_attacker(spec, std::move(victim), /*teacher=*/nullptr);
}

GaussianPolicy PolicyZoo::train_imu_attacker_pure_sac() {
  auto victim = std::make_shared<E2EAgent>(driving_policy(), camera_, frame_stack_);
  AttackTrainSpec spec = default_attack_spec(AttackSensorType::Imu, 1.0);
  spec.env.scenario = experiment_.scenario;
  spec.env.imu = imu_;
  spec.env.reward = experiment_.adv_reward;
  spec.bc_episodes = 0;  // the paper's unguided process
  spec.train.start_steps = scaled_steps(800, 40);
  spec.train.seed = 46;
  arm_checkpoint(spec.train, "attacker_imu_puresac");
  return train_attacker(spec, std::move(victim), /*teacher=*/nullptr);
}

GaussianPolicy PolicyZoo::train_finetuned_r11() {
  FinetuneSpec spec = default_finetune_spec(1.0 / 11.0);
  arm_checkpoint(spec.train, "finetune_r11");
  return adversarial_finetune(driving_policy(), camera_attacker_vs_e2e(),
                              experiment_.scenario, spec);
}

GaussianPolicy PolicyZoo::train_finetuned_r2() {
  FinetuneSpec spec = default_finetune_spec(0.5);
  spec.train.seed = 78;
  arm_checkpoint(spec.train, "finetune_r2");
  return adversarial_finetune(driving_policy(), camera_attacker_vs_e2e(),
                              experiment_.scenario, spec);
}

GaussianPolicy PolicyZoo::train_pnn_column() {
  PnnTrainSpec spec = default_pnn_spec();
  arm_checkpoint(spec.train, "pnn_column");
  // Qualified call selects the free trainer in defense/pnn_agent.hpp.
  return adsec::train_pnn_column(driving_policy(), camera_attacker_vs_e2e(),
                                 experiment_.scenario, spec);
}

// ---------------------------------------------------------------- factories

std::unique_ptr<ModularAgent> PolicyZoo::make_modular_agent() const {
  return std::make_unique<ModularAgent>();
}

std::unique_ptr<E2EAgent> PolicyZoo::make_e2e_agent() {
  return std::make_unique<E2EAgent>(driving_policy(), camera_, frame_stack_);
}

std::unique_ptr<E2EAgent> PolicyZoo::make_finetuned_agent(double rho) {
  const std::string label = rho < 0.2 ? "e2e-adv,rho=1/11" : "e2e-adv,rho=1/2";
  return std::make_unique<E2EAgent>(finetuned(rho), camera_, frame_stack_, label);
}

std::unique_ptr<PnnSwitchedAgent> PolicyZoo::make_pnn_agent(double sigma) {
  return std::make_unique<PnnSwitchedAgent>(driving_policy(), pnn_column(), sigma,
                                            camera_, frame_stack_);
}

std::unique_ptr<LearnedCameraAttacker> PolicyZoo::make_camera_attacker(double budget,
                                                                       bool vs_modular) {
  return std::make_unique<LearnedCameraAttacker>(
      vs_modular ? camera_attacker_vs_modular() : camera_attacker_vs_e2e(), budget,
      camera_, frame_stack_);
}

std::unique_ptr<LearnedImuAttacker> PolicyZoo::make_imu_attacker(double budget) {
  return std::make_unique<LearnedImuAttacker>(imu_attacker(), budget, imu_);
}

std::unique_ptr<DeterministicCameraAttacker> PolicyZoo::make_td3_attacker(double budget) {
  return std::make_unique<DeterministicCameraAttacker>(td3_attacker(), budget, camera_,
                                                       frame_stack_);
}

}  // namespace adsec
