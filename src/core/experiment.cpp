#include "core/experiment.hpp"

#include "agents/reward.hpp"
#include "common/angle.hpp"
#include "common/fault_injection.hpp"
#include "telemetry/telemetry.hpp"

namespace adsec {

namespace {

struct ExperimentMetrics {
  telemetry::Counter episodes = telemetry::counter("experiment.episodes");
  telemetry::Histogram episode_steps = telemetry::histogram(
      "experiment.episode_steps", {50, 100, 200, 400, 600, 800, 1000, 1500, 2000});
};

ExperimentMetrics& experiment_metrics() {
  static ExperimentMetrics m;
  return m;
}

}  // namespace

EpisodeMetrics run_episode(DrivingAgent& agent, Attacker* attacker,
                           const ExperimentConfig& config, std::uint64_t seed,
                           Trajectory* traj_out) {
  ADSEC_SPAN("experiment.episode");
  // Chaos hook: lets the orchestrator tests make an episode transiently
  // fail or stall without touching the simulation itself.
  maybe_inject("experiment.episode");
  Rng rng(seed);
  World world = make_scenario(config.scenario, rng);
  agent.reset(world);
  if (attacker != nullptr) attacker->reset(world);

  BehaviorPlanner reference(config.reference_planner);
  reference.reset(config.scenario.ego_start_lane);

  EpisodeMetrics m;
  double plan_dev2 = 0.0;
  while (!world.done()) {
    const PlanStep plan = reference.plan(world);
    Action a = agent.decide(world);
    double delta = 0.0;
    double thrust_delta = 0.0;
    if (attacker != nullptr) {
      delta = attacker->decide(world);
      thrust_delta = attacker->decide_thrust(world);
    }
    const int target = world.target_npc_index();

    a.steer_variation = clamp(a.steer_variation + delta, -1.0, 1.0);
    a.thrust_variation = clamp(a.thrust_variation + thrust_delta, -1.0, 1.0);
    world.step(a, delta);
    if (attacker != nullptr) attacker->post_step(world);

    m.nominal_reward += driving_reward(world, plan, config.driving_reward);
    m.adv_reward += adv_reward_step(world, target, delta, config.adv_reward);

    const double lane_err =
        (world.ego_frenet().d - plan.target_d) / config.scenario.lane_width;
    plan_dev2 += lane_err * lane_err;
  }
  if (world.step_count() > 0) {
    m.plan_deviation_rmse = std::sqrt(plan_dev2 / world.step_count());
  }

  m.steps = world.step_count();
  m.passed_npcs = world.passed_npcs();
  m.collision = world.collision();
  m.side_collision =
      world.collided() && world.collision()->type == CollisionType::Side;
  m.attack_effort = attack_effort(world);
  for (const auto& rec : world.history()) m.total_injected += std::abs(rec.attack_delta);
  m.time_to_collision = time_to_collision(world);
  if (traj_out != nullptr) *traj_out = extract_trajectory(world);
  experiment_metrics().episodes.inc();
  experiment_metrics().episode_steps.observe(static_cast<double>(m.steps));
  return m;
}

EpisodeMetrics evaluate_with_reference(DrivingAgent& agent, Attacker* attacker,
                                       const ExperimentConfig& config,
                                       std::uint64_t seed) {
  Trajectory reference;
  run_episode(agent, nullptr, config, seed, &reference);

  Trajectory attacked;
  EpisodeMetrics m = run_episode(agent, attacker, config, seed, &attacked);
  m.deviation_rmse =
      deviation_rmse(attacked, reference, config.scenario.lane_width);
  return m;
}

EpisodeMetrics evaluate_episode(DrivingAgent& agent, Attacker* attacker,
                                const ExperimentConfig& config, std::uint64_t seed,
                                bool with_reference) {
  return with_reference ? evaluate_with_reference(agent, attacker, config, seed)
                        : run_episode(agent, attacker, config, seed);
}

std::vector<EpisodeMetrics> run_batch(DrivingAgent& agent, Attacker* attacker,
                                      const ExperimentConfig& config, int episodes,
                                      std::uint64_t seed_base, bool with_reference) {
  std::vector<EpisodeMetrics> out;
  out.reserve(static_cast<std::size_t>(episodes));
  for (int k = 0; k < episodes; ++k) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(k);
    out.push_back(evaluate_episode(agent, attacker, config, seed, with_reference));
  }
  return out;
}

double success_rate(const std::vector<EpisodeMetrics>& ms) {
  if (ms.empty()) return 0.0;
  int n = 0;
  for (const auto& m : ms) n += m.side_collision ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(ms.size());
}

std::vector<double> collect(const std::vector<EpisodeMetrics>& ms,
                            const std::function<double(const EpisodeMetrics&)>& f) {
  std::vector<double> out;
  out.reserve(ms.size());
  for (const auto& m : ms) out.push_back(f(m));
  return out;
}

}  // namespace adsec
