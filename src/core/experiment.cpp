#include "core/experiment.hpp"

#include "agents/reward.hpp"
#include "common/angle.hpp"
#include "common/fault_injection.hpp"
#include "telemetry/telemetry.hpp"

namespace adsec {

namespace {

struct ExperimentMetrics {
  telemetry::Counter episodes = telemetry::counter("experiment.episodes");
  telemetry::Histogram episode_steps = telemetry::histogram(
      "experiment.episode_steps", {50, 100, 200, 400, 600, 800, 1000, 1500, 2000});
};

ExperimentMetrics& experiment_metrics() {
  static ExperimentMetrics m;
  return m;
}

}  // namespace

EpisodeRunner::EpisodeRunner(DrivingAgent& agent, Attacker* attacker,
                             const ExperimentConfig& config, std::uint64_t seed)
    : attacker_(attacker),
      config_(config),
      world_([&] {
        // Chaos hook: lets the orchestrator tests make an episode transiently
        // fail or stall without touching the simulation itself.
        maybe_inject("experiment.episode");
        Rng rng(seed);
        return make_scenario(config.scenario, rng);
      }()),
      planner_(config.reference_planner) {
  agent.reset(world_);
  if (attacker_ != nullptr) attacker_->reset(world_);
  planner_.reset(config.scenario.ego_start_lane);
}

void EpisodeRunner::step(Action a) {
  const PlanStep plan = planner_.plan(world_);
  double delta = 0.0;
  double thrust_delta = 0.0;
  if (attacker_ != nullptr) {
    delta = attacker_->decide(world_);
    thrust_delta = attacker_->decide_thrust(world_);
  }
  const int target = world_.target_npc_index();

  a.steer_variation = clamp(a.steer_variation + delta, -1.0, 1.0);
  a.thrust_variation = clamp(a.thrust_variation + thrust_delta, -1.0, 1.0);
  world_.step(a, delta);
  if (attacker_ != nullptr) attacker_->post_step(world_);

  m_.nominal_reward += driving_reward(world_, plan, config_.driving_reward);
  m_.adv_reward += adv_reward_step(world_, target, delta, config_.adv_reward);

  const double lane_err =
      (world_.ego_frenet().d - plan.target_d) / config_.scenario.lane_width;
  plan_dev2_ += lane_err * lane_err;
}

EpisodeMetrics EpisodeRunner::finish(Trajectory* traj_out) {
  if (world_.step_count() > 0) {
    m_.plan_deviation_rmse = std::sqrt(plan_dev2_ / world_.step_count());
  }

  m_.steps = world_.step_count();
  m_.passed_npcs = world_.passed_npcs();
  m_.collision = world_.collision();
  m_.side_collision =
      world_.collided() && world_.collision()->type == CollisionType::Side;
  m_.attack_effort = attack_effort(world_);
  for (const auto& rec : world_.history()) m_.total_injected += std::abs(rec.attack_delta);
  m_.time_to_collision = time_to_collision(world_);
  if (traj_out != nullptr) *traj_out = extract_trajectory(world_);
  experiment_metrics().episodes.inc();
  experiment_metrics().episode_steps.observe(static_cast<double>(m_.steps));
  return m_;
}

EpisodeMetrics run_episode(DrivingAgent& agent, Attacker* attacker,
                           const ExperimentConfig& config, std::uint64_t seed,
                           Trajectory* traj_out) {
  ADSEC_SPAN("experiment.episode");
  EpisodeRunner runner(agent, attacker, config, seed);
  while (runner.running()) runner.step(agent.decide(runner.world()));
  return runner.finish(traj_out);
}

EpisodeMetrics evaluate_with_reference(DrivingAgent& agent, Attacker* attacker,
                                       const ExperimentConfig& config,
                                       std::uint64_t seed) {
  Trajectory reference;
  run_episode(agent, nullptr, config, seed, &reference);

  Trajectory attacked;
  EpisodeMetrics m = run_episode(agent, attacker, config, seed, &attacked);
  m.deviation_rmse =
      deviation_rmse(attacked, reference, config.scenario.lane_width);
  return m;
}

EpisodeMetrics evaluate_episode(DrivingAgent& agent, Attacker* attacker,
                                const ExperimentConfig& config, std::uint64_t seed,
                                bool with_reference) {
  return with_reference ? evaluate_with_reference(agent, attacker, config, seed)
                        : run_episode(agent, attacker, config, seed);
}

std::vector<EpisodeMetrics> run_batch(DrivingAgent& agent, Attacker* attacker,
                                      const ExperimentConfig& config, int episodes,
                                      std::uint64_t seed_base, bool with_reference) {
  std::vector<EpisodeMetrics> out;
  out.reserve(static_cast<std::size_t>(episodes));
  for (int k = 0; k < episodes; ++k) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(k);
    out.push_back(evaluate_episode(agent, attacker, config, seed, with_reference));
  }
  return out;
}

double success_rate(const std::vector<EpisodeMetrics>& ms) {
  if (ms.empty()) return 0.0;
  int n = 0;
  for (const auto& m : ms) n += m.side_collision ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(ms.size());
}

std::vector<double> collect(const std::vector<EpisodeMetrics>& ms,
                            const std::function<double(const EpisodeMetrics&)>& f) {
  std::vector<double> out;
  out.reserve(ms.size());
  for (const auto& m : ms) out.push_back(f(m));
  return out;
}

}  // namespace adsec
