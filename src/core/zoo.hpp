// Policy zoo: lazily trains and disk-caches every learned policy the
// benchmarks need, so that the paper's seven policies (driving agent, three
// attackers, two fine-tuned defenses, PNN column) are trained exactly once
// and shared across bench binaries, tests, and examples.
//
// Cache files live under ADSEC_ZOO_DIR (default "zoo/"); delete a file to
// force retraining. All training is deterministic given the seeds baked
// into the specs, so the cache is reproducible.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <string>

#include "agents/e2e_agent.hpp"
#include "common/annotations.hpp"
#include "agents/modular_agent.hpp"
#include "attack/attacker.hpp"
#include "core/experiment.hpp"
#include "defense/pnn_agent.hpp"

namespace adsec {

class PolicyZoo {
 public:
  // `dir` empty => runtime_config().zoo_dir. The directory is created.
  explicit PolicyZoo(std::string dir = "");

  // Shared experiment configuration (scenario, rewards, reference planner).
  const ExperimentConfig& experiment() const { return experiment_; }
  const CameraConfig& camera() const { return camera_; }
  const ImuConfig& imu() const { return imu_; }
  int frame_stack() const { return frame_stack_; }

  // ---- Learned policies (train-on-miss, cached). ----
  GaussianPolicy driving_policy();              // pi_ori (BC warm start + SAC)
  GaussianPolicy camera_attacker_vs_e2e();      // pi_adv (camera), victim pi_ori
  GaussianPolicy camera_attacker_vs_modular();  // pi_adv (camera), victim modular
  GaussianPolicy imu_attacker();                // pi_adv (IMU), learning-from-teacher

  // Teacher-ablation variants of the IMU attacker (Sec. IV-E claim: "the
  // same training process is ineffective for IMU-based policies"):
  //   no_pse:  oracle BC warm start but no p_se teacher term during SAC
  //   pure:    no BC, no teacher — the plain SAC process that works for the
  //            camera modality
  GaussianPolicy imu_attacker_no_pse();
  GaussianPolicy imu_attacker_pure_sac();
  GaussianPolicy finetuned(double rho);         // pi_adv,rho (rho in {1/11, 1/2})
  GaussianPolicy pnn_column();                  // second PNN column
  Mlp td3_attacker();                           // TD3 camera attack (ablation)

  // ---- Agent / attacker factories wired to the zoo's configs. ----
  std::unique_ptr<ModularAgent> make_modular_agent() const;
  std::unique_ptr<E2EAgent> make_e2e_agent();  // drives pi_ori
  std::unique_ptr<E2EAgent> make_finetuned_agent(double rho);
  std::unique_ptr<PnnSwitchedAgent> make_pnn_agent(double sigma);
  std::unique_ptr<LearnedCameraAttacker> make_camera_attacker(double budget,
                                                              bool vs_modular = false);
  std::unique_ptr<LearnedImuAttacker> make_imu_attacker(double budget);
  std::unique_ptr<DeterministicCameraAttacker> make_td3_attacker(double budget);

  const std::string& dir() const { return dir_; }

 private:
  std::string path(const std::string& name) const;
  std::string ckpt_path(const std::string& name) const;

  // Single-flight wrapper around load_or_train: concurrent lookups of the
  // same name share one load/train; followers block on the leader's future
  // and the zoo counters record exactly one miss. Entries are erased on
  // completion so later lookups re-probe the (now warm) disk cache.
  GaussianPolicy cached_or_train(const std::string& name,
                                 GaussianPolicy (PolicyZoo::*train)());
  GaussianPolicy load_or_train(const std::string& name,
                               GaussianPolicy (PolicyZoo::*train)());

  // When ADSEC_CKPT_EVERY > 0, point `cfg` at <zoo>/<name>.ckpt for both
  // periodic saves and resume, so a killed training run continues from its
  // last checkpoint on the next start. cached_or_train removes the
  // checkpoint once the finished policy is cached.
  void arm_checkpoint(TrainConfig& cfg, const std::string& name) const;

  GaussianPolicy train_driving_policy();
  GaussianPolicy train_camera_attacker_vs_e2e();
  GaussianPolicy train_camera_attacker_vs_modular();
  GaussianPolicy train_imu_attacker();
  GaussianPolicy train_imu_attacker_no_pse();
  GaussianPolicy train_imu_attacker_pure_sac();
  GaussianPolicy train_finetuned_r11();
  GaussianPolicy train_finetuned_r2();
  GaussianPolicy train_pnn_column();

  std::string dir_;
  ExperimentConfig experiment_;
  CameraConfig camera_;
  ImuConfig imu_;
  int frame_stack_{3};

  Mutex inflight_mu_;
  std::map<std::string, std::shared_future<GaussianPolicy>> inflight_
      ADSEC_GUARDED_BY(inflight_mu_);
  // Serializes td3_attacker (one cache entry): protects the load-or-train
  // critical section, not a field. adsec-lint: allow(unguarded-mutex)
  Mutex td3_mu_;
};

}  // namespace adsec
