// Episode tracing utilities: a per-step recorder that mirrors everything the
// experiment runner sees (for offline analysis / plotting) and an ASCII
// bird's-eye renderer of the freeway for terminal demos.
#pragma once

#include <string>
#include <vector>

#include "sim/world.hpp"

namespace adsec {

struct TraceRow {
  double t{0.0};
  double s{0.0};
  double d{0.0};
  double speed{0.0};
  double heading{0.0};
  double steer{0.0};        // applied actuation
  double thrust{0.0};
  double delta{0.0};        // injected steering perturbation
  bool critical{false};     // I(omega) w.r.t. the target NPC
  int target_npc{-1};
};

class EpisodeTrace {
 public:
  void clear() { rows_.clear(); }
  void add(const TraceRow& row) { rows_.push_back(row); }

  const std::vector<TraceRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  // CSV with a header row; throws on I/O failure.
  void write_csv(const std::string& path) const;
  std::string to_csv() const;

  // Build a row from the current world state (call after World::step).
  static TraceRow capture(const World& world, double delta, bool critical,
                          int target_npc);

 private:
  std::vector<TraceRow> rows_;
};

// ASCII bird's-eye snapshot of the road around the ego: '>' ego, 'n' NPCs,
// '|' barriers, '.' lane markings. `span` metres of road ahead/behind are
// mapped onto `width` character columns.
std::string render_ascii(const World& world, double rear = 15.0,
                         double ahead = 45.0, int width = 61);

}  // namespace adsec
