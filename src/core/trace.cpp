#include "core/trace.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace adsec {

TraceRow EpisodeTrace::capture(const World& world, double delta, bool critical,
                               int target_npc) {
  TraceRow row;
  row.t = world.time();
  row.s = world.ego_frenet().s;
  row.d = world.ego_frenet().d;
  row.speed = world.ego().state().speed;
  row.heading = world.ego().state().heading;
  row.steer = world.ego().actuation().steer;
  row.thrust = world.ego().actuation().thrust;
  row.delta = delta;
  row.critical = critical;
  row.target_npc = target_npc;
  return row;
}

std::string EpisodeTrace::to_csv() const {
  std::ostringstream os;
  os << "t,s,d,speed,heading,steer,thrust,delta,critical,target_npc\n";
  for (const auto& r : rows_) {
    os << r.t << ',' << r.s << ',' << r.d << ',' << r.speed << ',' << r.heading
       << ',' << r.steer << ',' << r.thrust << ',' << r.delta << ','
       << (r.critical ? 1 : 0) << ',' << r.target_npc << '\n';
  }
  return os.str();
}

void EpisodeTrace::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("EpisodeTrace::write_csv: cannot open " + path);
  out << to_csv();
}

std::string render_ascii(const World& world, double rear, double ahead, int width) {
  const Road& road = world.road();
  const int lanes = road.num_lanes();
  // One text row per lane plus two barrier rows; columns map arclength.
  const double ego_s = world.ego_frenet().s;
  const double span = rear + ahead;
  auto col_of = [&](double s) {
    return static_cast<int>((s - (ego_s - rear)) / span * (width - 1));
  };

  std::vector<std::string> grid(static_cast<std::size_t>(lanes) + 2,
                                std::string(static_cast<std::size_t>(width), ' '));
  grid.front().assign(static_cast<std::size_t>(width), '=');  // left barrier
  grid.back().assign(static_cast<std::size_t>(width), '=');   // right barrier
  for (int l = 1; l <= lanes; ++l) {
    for (int c = 0; c < width; c += 2) grid[static_cast<std::size_t>(l)][static_cast<std::size_t>(c)] = '.';
  }

  // Row index for a lateral offset: lane rows are ordered left (top) to
  // right (bottom).
  auto row_of = [&](double d) {
    const int lane = road.lane_at_offset(d);
    return 1 + (lanes - 1 - lane);
  };

  for (std::size_t i = 0; i < world.npcs().size(); ++i) {
    const auto& npc = world.npcs()[i];
    const int c = col_of(npc.frenet().s);
    if (c < 0 || c >= width) continue;
    grid[static_cast<std::size_t>(row_of(npc.frenet().d))][static_cast<std::size_t>(c)] =
        static_cast<char>('0' + (i % 10));
  }
  {
    const int c = col_of(ego_s);
    if (c >= 0 && c < width) {
      grid[static_cast<std::size_t>(row_of(world.ego_frenet().d))][static_cast<std::size_t>(c)] = '>';
    }
  }

  std::ostringstream os;
  for (const auto& line : grid) os << line << '\n';
  return os.str();
}

}  // namespace adsec
