#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/serialize.hpp"

namespace adsec {

Trajectory extract_trajectory(const World& world) {
  Trajectory t;
  t.s.reserve(world.history().size());
  t.d.reserve(world.history().size());
  for (const auto& rec : world.history()) {
    t.s.push_back(rec.ego_frenet.s);
    t.d.push_back(rec.ego_frenet.d);
  }
  return t;
}

int attack_attempt_start(const World& world, double floor) {
  double peak = 0.0;
  for (const auto& rec : world.history()) {
    peak = std::max(peak, std::abs(rec.attack_delta));
  }
  const double level = std::max(0.5 * peak, floor);
  if (peak < floor) return -1;
  for (std::size_t i = 0; i < world.history().size(); ++i) {
    if (std::abs(world.history()[i].attack_delta) >= level) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

double attack_effort(const World& world, double floor) {
  const int start = attack_attempt_start(world, floor);
  if (start < 0) return 0.0;
  double total = 0.0;
  int steps = 0;
  for (std::size_t i = static_cast<std::size_t>(start); i < world.history().size(); ++i) {
    total += std::abs(world.history()[i].attack_delta);
    ++steps;
  }
  return steps > 0 ? total / steps : 0.0;
}

double time_to_collision(const World& world, double floor) {
  if (!world.collided()) return -1.0;
  const int start = attack_attempt_start(world, floor);
  if (start < 0) return -1.0;
  const double dt = world.config().dt;
  const int collision_step = world.collision()->step;
  // history index i corresponds to step i+1.
  return std::max(0.0, (collision_step - (start + 1)) * dt);
}

double deviation_rmse(const Trajectory& attacked, const Trajectory& reference,
                      double lane_width) {
  if (attacked.s.empty() || reference.s.empty()) return 0.0;
  if (lane_width <= 0.0) throw std::invalid_argument("deviation_rmse: bad lane width");

  // Reference d as a function of s via linear interpolation. Reference s is
  // monotone increasing (freeway driving).
  auto ref_d_at = [&](double s) {
    const auto& rs = reference.s;
    const auto& rd = reference.d;
    if (s <= rs.front()) return rd.front();
    if (s >= rs.back()) return rd.back();
    const auto it = std::lower_bound(rs.begin(), rs.end(), s);
    const auto hi = static_cast<std::size_t>(it - rs.begin());
    const std::size_t lo = hi - 1;
    const double span = rs[hi] - rs[lo];
    const double w = span > 1e-9 ? (s - rs[lo]) / span : 0.0;
    return rd[lo] * (1.0 - w) + rd[hi] * w;
  };

  double sum2 = 0.0;
  for (std::size_t i = 0; i < attacked.s.size(); ++i) {
    const double dev = (attacked.d[i] - ref_d_at(attacked.s[i])) / lane_width;
    sum2 += dev * dev;
  }
  return std::sqrt(sum2 / static_cast<double>(attacked.s.size()));
}

EffortWindowStats success_by_effort_window(const std::vector<double>& efforts,
                                           const std::vector<bool>& successes,
                                           double window, double max_lo) {
  if (efforts.size() != successes.size()) {
    throw std::invalid_argument("success_by_effort_window: size mismatch");
  }
  EffortWindowStats stats;
  const int buckets = static_cast<int>(std::round(max_lo / window)) + 1;
  stats.window_lo.resize(static_cast<std::size_t>(buckets));
  stats.episodes.assign(static_cast<std::size_t>(buckets), 0);
  stats.successes.assign(static_cast<std::size_t>(buckets), 0);
  for (int b = 0; b < buckets; ++b) stats.window_lo[static_cast<std::size_t>(b)] = b * window;

  for (std::size_t i = 0; i < efforts.size(); ++i) {
    int b = static_cast<int>(efforts[i] / window);
    b = std::min(b, buckets - 1);
    b = std::max(b, 0);
    ++stats.episodes[static_cast<std::size_t>(b)];
    if (successes[i]) ++stats.successes[static_cast<std::size_t>(b)];
  }
  stats.success_rate.resize(static_cast<std::size_t>(buckets));
  for (int b = 0; b < buckets; ++b) {
    const auto ub = static_cast<std::size_t>(b);
    stats.success_rate[ub] =
        stats.episodes[ub] > 0
            ? static_cast<double>(stats.successes[ub]) / stats.episodes[ub]
            : 0.0;
  }
  return stats;
}

void write_episode_metrics(BinaryWriter& w, const EpisodeMetrics& m) {
  w.write_u32(static_cast<std::uint32_t>(m.steps));
  w.write_u32(static_cast<std::uint32_t>(m.passed_npcs));
  w.write_u32(m.collision.has_value() ? 1u : 0u);
  if (m.collision.has_value()) {
    w.write_u32(static_cast<std::uint32_t>(m.collision->type));
    w.write_i64(m.collision->npc_index);
    w.write_i64(m.collision->step);
  }
  w.write_u32(m.side_collision ? 1u : 0u);
  w.write_f64(m.nominal_reward);
  w.write_f64(m.adv_reward);
  w.write_f64(m.attack_effort);
  w.write_f64(m.total_injected);
  w.write_f64(m.time_to_collision);
  w.write_f64(m.deviation_rmse);
  w.write_f64(m.plan_deviation_rmse);
}

EpisodeMetrics read_episode_metrics(BinaryReader& r) {
  EpisodeMetrics m;
  m.steps = static_cast<int>(r.read_u32());
  m.passed_npcs = static_cast<int>(r.read_u32());
  if (r.read_u32() != 0u) {
    CollisionEvent ev;
    const std::uint32_t type = r.read_u32();
    if (type > static_cast<std::uint32_t>(CollisionType::Barrier)) {
      throw std::runtime_error("read_episode_metrics: bad collision type");
    }
    ev.type = static_cast<CollisionType>(type);
    ev.npc_index = static_cast<int>(r.read_i64());
    ev.step = static_cast<int>(r.read_i64());
    m.collision = ev;
  }
  m.side_collision = r.read_u32() != 0u;
  m.nominal_reward = r.read_f64();
  m.adv_reward = r.read_f64();
  m.attack_effort = r.read_f64();
  m.total_injected = r.read_f64();
  m.time_to_collision = r.read_f64();
  m.deviation_rmse = r.read_f64();
  m.plan_deviation_rmse = r.read_f64();
  return m;
}

}  // namespace adsec
