// Episode rollout harness: drives any DrivingAgent through the freeway
// scenario, with an optional attacker on the steering path, and collects
// the paper's metrics. `evaluate_with_reference` additionally rolls the
// same seed WITHOUT the attacker to obtain the reference trajectory for the
// deviation-RMSE metric (the "predetermined path").
#pragma once

#include <functional>
#include <memory>

#include "agents/agent.hpp"
#include "agents/reward.hpp"
#include "attack/adv_reward.hpp"
#include "attack/attacker.hpp"
#include "core/metrics.hpp"
#include "planner/behavior.hpp"
#include "sim/scenario.hpp"

namespace adsec {

struct ExperimentConfig {
  ScenarioConfig scenario;
  DrivingRewardConfig driving_reward;
  AdvRewardConfig adv_reward;
  BehaviorConfig reference_planner;  // privileged planner for reward/reference
};

// Roll one episode. `attacker` may be null (nominal driving). If `traj_out`
// is non-null the ego (s, d) trajectory is stored there.
EpisodeMetrics run_episode(DrivingAgent& agent, Attacker* attacker,
                           const ExperimentConfig& config, std::uint64_t seed,
                           Trajectory* traj_out = nullptr);

// Attacked episode + nominal reference episode of the same seed; fills
// deviation_rmse. The agent is reset for each of the two runs.
EpisodeMetrics evaluate_with_reference(DrivingAgent& agent, Attacker* attacker,
                                       const ExperimentConfig& config,
                                       std::uint64_t seed);

// Batch evaluation over `episodes` seeds (seed_base + k).
std::vector<EpisodeMetrics> run_batch(DrivingAgent& agent, Attacker* attacker,
                                      const ExperimentConfig& config, int episodes,
                                      std::uint64_t seed_base,
                                      bool with_reference = false);

// Summary helpers over a batch.
double success_rate(const std::vector<EpisodeMetrics>& ms);
std::vector<double> collect(const std::vector<EpisodeMetrics>& ms,
                            const std::function<double(const EpisodeMetrics&)>& f);

}  // namespace adsec
