// Episode rollout harness: drives any DrivingAgent through the freeway
// scenario, with an optional attacker on the steering path, and collects
// the paper's metrics. `evaluate_with_reference` additionally rolls the
// same seed WITHOUT the attacker to obtain the reference trajectory for the
// deviation-RMSE metric (the "predetermined path").
#pragma once

#include <functional>
#include <memory>

#include "agents/agent.hpp"
#include "agents/reward.hpp"
#include "attack/adv_reward.hpp"
#include "attack/attacker.hpp"
#include "core/metrics.hpp"
#include "planner/behavior.hpp"
#include "sim/scenario.hpp"

namespace adsec {

struct ExperimentConfig {
  ScenarioConfig scenario;
  DrivingRewardConfig driving_reward;
  AdvRewardConfig adv_reward;
  BehaviorConfig reference_planner;  // privileged planner for reward/reference
};

// One episode, decomposed so a scheduler can interleave many in-flight
// episodes (runtime/lane_scheduler.hpp): construction seeds the world and
// resets the actors; step() advances one control cycle given the agent's
// decided action for the CURRENT world state; finish() extracts the
// metrics once the episode is over. run_episode() below is exactly
//
//   EpisodeRunner r(agent, attacker, config, seed);
//   while (r.running()) r.step(agent.decide(r.world()));
//   return r.finish(traj_out);
//
// so interleaved and straight-line execution are bit-identical. `config`
// is held by reference and must outlive the runner.
class EpisodeRunner {
 public:
  EpisodeRunner(DrivingAgent& agent, Attacker* attacker,
                const ExperimentConfig& config, std::uint64_t seed);

  bool running() const { return !world_.done(); }
  const World& world() const { return world_; }

  // Apply the attacker, advance the simulation, and accumulate the
  // per-step metrics. Only valid while running().
  void step(Action decided);

  // Finalize and return the episode metrics; call once, after the episode
  // is over. If `traj_out` is non-null the ego trajectory is stored there.
  EpisodeMetrics finish(Trajectory* traj_out = nullptr);

 private:
  Attacker* attacker_;
  const ExperimentConfig& config_;
  World world_;
  BehaviorPlanner planner_;
  EpisodeMetrics m_;
  double plan_dev2_{0.0};
};

// Roll one episode. `attacker` may be null (nominal driving). If `traj_out`
// is non-null the ego (s, d) trajectory is stored there.
EpisodeMetrics run_episode(DrivingAgent& agent, Attacker* attacker,
                           const ExperimentConfig& config, std::uint64_t seed,
                           Trajectory* traj_out = nullptr);

// Attacked episode + nominal reference episode of the same seed; fills
// deviation_rmse. The agent is reset for each of the two runs.
EpisodeMetrics evaluate_with_reference(DrivingAgent& agent, Attacker* attacker,
                                       const ExperimentConfig& config,
                                       std::uint64_t seed);

// Single-episode dispatch shared by the serial and parallel batch runners:
// run_episode or evaluate_with_reference depending on `with_reference`.
// Keeping both runners on this one code path is what makes the parallel
// batch bit-identical to the serial one.
EpisodeMetrics evaluate_episode(DrivingAgent& agent, Attacker* attacker,
                                const ExperimentConfig& config, std::uint64_t seed,
                                bool with_reference);

// Batch evaluation over `episodes` seeds (seed_base + k).
std::vector<EpisodeMetrics> run_batch(DrivingAgent& agent, Attacker* attacker,
                                      const ExperimentConfig& config, int episodes,
                                      std::uint64_t seed_base,
                                      bool with_reference = false);

// Factories for the parallel batch runner (src/runtime). Agents and
// attackers are stateful and non-clonable, so each pool worker constructs
// its own pair. Factories are invoked concurrently from worker threads and
// must therefore only read shared state (e.g. copy a trained policy —
// train or load it *before* entering the parallel region). An empty
// AttackerFactory (or one returning null) means nominal driving.
using AgentFactory = std::function<std::unique_ptr<DrivingAgent>()>;
using AttackerFactory = std::function<std::unique_ptr<Attacker>()>;

// Parallel run_batch. Episode k keeps its serial seed (seed_base + k) and
// its slot k in the result vector, and every episode starts from a freshly
// reset agent/attacker, so the returned metrics are bit-identical to
// run_batch output in the same order, for any thread count. jobs <= 0
// selects hardware_concurrency. Defined in runtime/parallel_eval.cpp; see
// that header for the options overload (progress callbacks).
std::vector<EpisodeMetrics> run_batch_parallel(const AgentFactory& make_agent,
                                               const AttackerFactory& make_attacker,
                                               const ExperimentConfig& config,
                                               int episodes, std::uint64_t seed_base,
                                               bool with_reference = false,
                                               int jobs = 0);

// Summary helpers over a batch.
double success_rate(const std::vector<EpisodeMetrics>& ms);
std::vector<double> collect(const std::vector<EpisodeMetrics>& ms,
                            const std::function<double(const EpisodeMetrics&)>& f);

}  // namespace adsec
