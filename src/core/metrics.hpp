// Evaluation metrics used across the paper's figures:
//   - cumulative nominal driving reward (Figs. 4a, 6)
//   - cumulative adversarial reward (Fig. 4b)
//   - attack success / success rate (Figs. 5, 7, 8)
//   - trajectory deviation RMSE vs attack effort (Figs. 5, 7)
//   - time-to-collision from first injection (Sec. V-B)
#pragma once

#include <optional>
#include <vector>

#include "sim/world.hpp"

namespace adsec {

struct EpisodeMetrics {
  int steps{0};
  int passed_npcs{0};
  std::optional<CollisionEvent> collision;
  bool side_collision{false};      // the attacker's success criterion
  double nominal_reward{0.0};      // cumulative driving reward
  double adv_reward{0.0};          // cumulative adversarial reward
  double attack_effort{0.0};       // mean |delta| over the attack attempt
  double total_injected{0.0};      // sum |delta|
  double time_to_collision{-1.0};  // s from first injection to collision; -1 if n/a
  double deviation_rmse{-1.0};     // filled by evaluate_with_reference; -1 if n/a

  // RMSE of the lateral error to the privileged planner's target lane
  // center, in lane-width fractions — the "deviation from the predetermined
  // path" of Figs. 5/7 (the green-arrow route of Fig. 1a). Always filled by
  // run_episode.
  double plan_deviation_rmse{0.0};
};

// A trajectory sampled as (s, d) pairs along the episode.
struct Trajectory {
  std::vector<double> s;
  std::vector<double> d;
};

// Extract the ego trajectory from a finished world's history.
Trajectory extract_trajectory(const World& world);

// Start of the "attack attempt": index of the first step whose |delta|
// reaches half of the episode's peak |delta| (and at least `floor`).
// Learned attackers emit small residual deltas while lurking; the attempt
// begins when the injection ramps toward its strike level. Returns -1 if
// nothing above `floor` was injected.
int attack_attempt_start(const World& world, double floor = 0.02);

// Attack effort: mean |delta| from the attempt start to the episode end
// (the paper's "mean attack effort averaged over the number of steps in
// each attack attempt"); 0 if there was no attempt.
double attack_effort(const World& world, double floor = 0.02);

// Time from the attack-attempt start to the collision, in seconds; -1 when
// there was no attempt or no collision.
double time_to_collision(const World& world, double floor = 0.02);

// RMSE of the attacked run's lateral offset against a reference run of the
// same scenario, matched by arclength and normalized by the lane width
// (the paper's "RMSE in the percentage of the steering deviation").
double deviation_rmse(const Trajectory& attacked, const Trajectory& reference,
                      double lane_width);

// Success rate aggregation for Fig. 8: fraction of successful episodes in
// each attack-effort window of width `window` starting at 0; the last bucket
// is open-ended ("0.8+").
struct EffortWindowStats {
  std::vector<double> window_lo;   // left edge of each window
  std::vector<int> episodes;       // episodes falling in the window
  std::vector<int> successes;
  std::vector<double> success_rate;
};

EffortWindowStats success_by_effort_window(const std::vector<double>& efforts,
                                           const std::vector<bool>& successes,
                                           double window = 0.2, double max_lo = 0.8);

class BinaryWriter;
class BinaryReader;

// Field-by-field (de)serialization of EpisodeMetrics for the orchestrator's
// content-addressed result store. Round-trips bit-identically: doubles are
// written raw, the optional collision as a presence flag + its fields.
void write_episode_metrics(BinaryWriter& w, const EpisodeMetrics& m);
[[nodiscard]] EpisodeMetrics read_episode_metrics(BinaryReader& r);

}  // namespace adsec
