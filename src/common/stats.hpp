// Descriptive statistics used by the experiment harness: the paper reports
// box plots (Figs. 4 and 6), RMSE trajectory deviation (Figs. 5 and 7) and
// windowed success rates (Fig. 8).
#pragma once

#include <span>
#include <string>

namespace adsec {

double mean(std::span<const double> xs);
double stdev(std::span<const double> xs);  // sample standard deviation
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double median(std::span<const double> xs);

// Linear-interpolated quantile, q in [0,1].
double quantile(std::span<const double> xs, double q);

// Root mean square of the values themselves (deviation series -> RMSE).
double rms(std::span<const double> xs);

// Five-number summary + mean, as used for box plots.
struct BoxStats {
  double min{0}, q1{0}, median{0}, q3{0}, max{0}, mean{0};
  int n{0};
};

BoxStats box_stats(std::span<const double> xs);

// Render "min/q1/med/q3/max (mean)" for console tables.
std::string format_box(const BoxStats& b);

// Pearson correlation; returns 0 for degenerate inputs.
double correlation(std::span<const double> xs, std::span<const double> ys);

// Online accumulator for streaming means/variances (Welford).
class RunningStats {
 public:
  void add(double x);
  int count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance
  double stdev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

}  // namespace adsec
