// Small 2-D vector used throughout the simulator.
//
// All simulator geometry is planar: the action-space attack studied in the
// paper acts on steering, i.e. on lateral planar motion, so a 2-D world is
// the natural substrate.
#pragma once

#include <cmath>

namespace adsec {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  // z-component of the 3-D cross product; sign tells left/right of *this.
  constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::hypot(x, y); }
  constexpr double norm2() const { return x * x + y * y; }

  // Unit vector; returns (0,0) for (near-)zero input instead of NaN so that
  // reward terms built on unit vectors stay finite at standstill.
  Vec2 normalized() const {
    const double n = norm();
    return n > 1e-12 ? Vec2{x / n, y / n} : Vec2{0.0, 0.0};
  }

  // Rotate counter-clockwise by `rad`.
  Vec2 rotated(double rad) const {
    const double c = std::cos(rad), s = std::sin(rad);
    return {c * x - s * y, s * x + c * y};
  }

  // Perpendicular (counter-clockwise normal).
  constexpr Vec2 perp() const { return {-y, x}; }

  double heading() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return {v.x * s, v.y * s}; }

inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

// Heading given as an angle -> unit vector.
inline Vec2 unit_from_heading(double rad) { return {std::cos(rad), std::sin(rad)}; }

}  // namespace adsec
