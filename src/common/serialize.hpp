// Minimal binary serialization for trained policies (the policy zoo).
//
// Format: little-endian, a 4-byte magic + version, then tagged primitives.
// This is deliberately simple — the only consumers are this library's own
// save/load paths, which round-trip through the same code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adsec {

class BinaryWriter {
 public:
  void write_u32(std::uint32_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f64_vector(const std::vector<double>& v);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  void save(const std::string& path) const;  // throws on I/O failure

 private:
  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> bytes);
  static BinaryReader load(const std::string& path);  // throws on I/O failure

  std::uint32_t read_u32();
  std::int64_t read_i64();
  double read_f64();
  std::string read_string();
  std::vector<double> read_f64_vector();

  bool at_end() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n) const;  // throws std::runtime_error on underrun
  std::vector<std::uint8_t> buf_;
  std::size_t pos_{0};
};

}  // namespace adsec
