// Minimal binary serialization for trained policies and checkpoints.
//
// Two layers:
//  - BinaryWriter/BinaryReader: little-endian tagged primitives. The only
//    consumers are this library's own save/load paths, which round-trip
//    through the same code.
//  - The checked container (save_checked / load_checked): a magic/version/
//    size/CRC32 header around the payload, written to a temp file and
//    renamed into place. A crash, torn write, or flipped bit anywhere in
//    the file is detected at load time as adsec::Error{Corrupt}, and a
//    failed write never clobbers the previous good file. All durable
//    artifacts (zoo policies, trainer checkpoints) go through this layer.
//
// File writes thread the "serialize.save" fault-injection point so tests
// can fail, truncate, or corrupt the N-th write (common/fault_injection.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adsec {

// CRC-32 (IEEE 802.3, reflected) over `n` bytes.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

class BinaryWriter {
 public:
  void write_u32(std::uint32_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f64_vector(const std::vector<double>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  void save(const std::string& path) const;  // throws on I/O failure

  // Crash-safe save: header (magic, format_version, payload size, CRC32)
  // + payload written to `path + ".tmp"`, flushed, then renamed over
  // `path`. Throws adsec::Error{Io} on failure, leaving any previous file
  // at `path` untouched.
  void save_checked(const std::string& path, std::uint32_t format_version) const;

 private:
  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> bytes);
  // Throws on I/O failure. [[nodiscard]]: a dropped reader means the caller
  // paid for the read and then validated nothing.
  [[nodiscard]] static BinaryReader load(const std::string& path);

  // Counterpart of BinaryWriter::save_checked: validates magic, version,
  // size, and CRC before exposing the payload. Throws adsec::Error{Io} if
  // the file can't be read, adsec::Error{Corrupt} if it fails validation
  // or its version exceeds `max_supported_version`. On success
  // *format_version (if non-null) receives the stored version.
  [[nodiscard]] static BinaryReader load_checked(
      const std::string& path, std::uint32_t max_supported_version,
      std::uint32_t* format_version = nullptr);

  // [[nodiscard]] on every read: a discarded read is a silent cursor
  // advance, which desynchronizes every field after it.
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<double> read_f64_vector();

  [[nodiscard]] bool at_end() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n) const;  // throws std::runtime_error on underrun
  std::vector<std::uint8_t> buf_;
  std::size_t pos_{0};
};

}  // namespace adsec
