// Tiny leveled logger. Benches set the level to Info to narrate training
// progress; tests default to Warn to keep ctest output readable.
//
// Safe under the parallel runtime: each record is one write (lines never
// interleave across threads) and is prefixed with the shared monotonic
// timestamp and thread id, e.g. "[   12.041233] [t03] [info] ...".
#pragma once


namespace adsec {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

// printf-style logging; no-op below the current level.
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace adsec
