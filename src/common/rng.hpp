// Deterministic, seedable random number generation.
//
// Everything stochastic in the library (NPC spawn jitter, sensor noise,
// SAC exploration, replay sampling) draws from an explicitly passed Rng so
// experiments are reproducible bit-for-bit given a seed. PCG32 keeps the
// state small and the streams independent across seeds.
#pragma once

#include <cstdint>
#include <cmath>

namespace adsec {

// Complete PCG32 + Box-Muller-cache state, exposed so checkpoints can
// freeze and resume an RNG stream at its exact position (rl/checkpoint.hpp).
struct RngState {
  std::uint64_t state{0};
  std::uint64_t inc{0};
  bool has_cached{false};
  double cached{0.0};
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0U;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  // Uniform in [0, 1).
  double uniform() { return next_u32() * (1.0 / 4294967296.0); }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  std::uint32_t uniform_int(std::uint32_t n) {
    // Lemire's nearly-divisionless bounded integers would be overkill here;
    // modulo bias is negligible for the small n we use.
    return n == 0 ? 0 : next_u32() % n;
  }

  // Standard normal via Box-Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stdev) { return mean + stdev * normal(); }

  bool bernoulli(double p) { return uniform() < p; }

  // Derive an independent child generator (for per-component streams).
  Rng split() { return Rng(next_u32() | (std::uint64_t(next_u32()) << 32), next_u32()); }

  // Snapshot / restore the full stream position (bit-exact resume).
  RngState get_state() const { return {state_, inc_, has_cached_, cached_}; }
  void set_state(const RngState& s) {
    state_ = s.state;
    inc_ = s.inc;
    has_cached_ = s.has_cached;
    cached_ = s.cached;
  }

 private:
  std::uint64_t state_{0};
  std::uint64_t inc_{0};
  bool has_cached_{false};
  double cached_{0.0};
};

}  // namespace adsec
