#include "common/error.hpp"

namespace adsec {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::Io: return "io";
    case ErrorCode::Corrupt: return "corrupt";
    case ErrorCode::Config: return "config";
    case ErrorCode::Diverged: return "diverged";
    case ErrorCode::Usage: return "usage";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::Rejected: return "rejected";
  }
  return "unknown";
}

Error::Error(ErrorCode code, const std::string& message)
    : std::runtime_error(std::string("[") + error_code_name(code) + "] " + message),
      code_(code) {}

}  // namespace adsec
