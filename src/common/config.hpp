// Process-wide runtime options.
//
// The benchmark harness trains several DRL policies from scratch. To keep
// `ctest` fast while letting benches do full-fidelity runs, training sizes
// are scaled by a single `train_scale` knob. Environment variables:
//
//   ADSEC_ZOO_DIR      where trained policies are cached (default "zoo")
//   ADSEC_TRAIN_SCALE  multiplier on training steps (default 1.0)
//   ADSEC_EPISODES     override for per-configuration evaluation episodes
//   ADSEC_CKPT_EVERY   training checkpoint interval in env steps; a killed
//                      zoo training run resumes from <zoo>/<name>.ckpt on
//                      the next start (default 0 = disabled)
//   ADSEC_LOG          debug|info|warn|error|off
#pragma once

#include <optional>
#include <string>

namespace adsec {

struct RuntimeConfig {
  std::string zoo_dir = "zoo";
  double train_scale = 1.0;
  std::optional<int> episodes_override;
  int checkpoint_every = 0;  // 0 disables zoo training checkpoints

  // Read environment variables on top of the defaults.
  static RuntimeConfig from_env();
};

// Process-wide singleton (mutable for tests).
RuntimeConfig& runtime_config();

// Scale a step count by train_scale with a floor of `min_steps`.
int scaled_steps(int nominal, int min_steps = 1);

// Evaluation episode count honouring ADSEC_EPISODES.
int eval_episodes(int nominal);

}  // namespace adsec
