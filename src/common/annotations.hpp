// Compile-time concurrency contracts: Clang thread-safety annotations plus
// annotated mutex wrappers.
//
// The raw libstdc++ std::mutex carries no thread-safety attributes, so
// -Wthread-safety has nothing to check against it. Every lock in src/
// therefore goes through the annotated adsec::Mutex below, fields it
// protects carry ADSEC_GUARDED_BY(mu_), and helpers that assume the lock is
// already held carry ADSEC_REQUIRES(mu_). CI's thread-safety job compiles
// the tree under clang with -Wthread-safety -Werror=thread-safety, which
// turns those declarations into checked contracts; under GCC (and any other
// compiler) every macro expands to nothing and the wrappers cost exactly a
// std::mutex / std::lock_guard.
//
// Known analysis limits that shape the code style (see DESIGN.md
// "Concurrency contracts"):
//   - constructors and destructors are not analyzed, so post-join reads in
//     a destructor need no annotation;
//   - lambda bodies are analyzed as separate functions — a capability held
//     at the capture site does NOT transfer inside, so condition-variable
//     waits use explicit `while (!pred()) cv_.wait(lock);` loops instead of
//     predicate lambdas;
//   - the analysis is intra-procedural: a `*_locked()` helper must declare
//     ADSEC_REQUIRES(mu_) or its guarded accesses will be flagged.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ADSEC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ADSEC_THREAD_ANNOTATION
#define ADSEC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type declares a capability (a lock); instances can be held or not held.
#define ADSEC_CAPABILITY(x) ADSEC_THREAD_ANNOTATION(capability(x))
// RAII type whose lifetime equals holding the capability passed to its ctor.
#define ADSEC_SCOPED_CAPABILITY ADSEC_THREAD_ANNOTATION(scoped_lockable)
// Field may only be read/written while holding the named capability.
#define ADSEC_GUARDED_BY(x) ADSEC_THREAD_ANNOTATION(guarded_by(x))
// Pointer field: the pointee (not the pointer) is guarded.
#define ADSEC_PT_GUARDED_BY(x) ADSEC_THREAD_ANNOTATION(pt_guarded_by(x))
// Function requires the capabilities to be held on entry (and exit).
#define ADSEC_REQUIRES(...) \
  ADSEC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Function acquires / releases the capabilities (empty list = `this`).
#define ADSEC_ACQUIRE(...) \
  ADSEC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ADSEC_RELEASE(...) \
  ADSEC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Function conditionally acquires: holds iff it returned `ret`.
#define ADSEC_TRY_ACQUIRE(ret, ...) \
  ADSEC_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
// Caller must NOT hold the capabilities (non-reentrancy contract).
#define ADSEC_EXCLUDES(...) ADSEC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Function returns a reference to the named capability.
#define ADSEC_RETURN_CAPABILITY(x) ADSEC_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch for code the analysis cannot model; use with a comment.
#define ADSEC_NO_THREAD_SAFETY_ANALYSIS \
  ADSEC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace adsec {

// Annotated std::mutex. The wrapped member is the one sanctioned raw
// std::mutex in src/ (adsec_lint's unguarded-mutex rule exempts this file).
class ADSEC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADSEC_ACQUIRE() { mu_.lock(); }
  void unlock() ADSEC_RELEASE() { mu_.unlock(); }
  bool try_lock() ADSEC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// std::lock_guard equivalent over the annotated Mutex.
class ADSEC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ADSEC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ADSEC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// std::unique_lock equivalent: BasicLockable, so it drives
// std::condition_variable_any waits and supports the unlock-work-relock
// pattern the blocking-call rule demands around I/O.
class ADSEC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ADSEC_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
    held_ = true;
  }
  ~UniqueLock() ADSEC_RELEASE() {
    if (held_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ADSEC_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() ADSEC_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  bool owns_lock() const { return held_; }

 private:
  Mutex& mu_;
  bool held_{false};
};

}  // namespace adsec
