// Angle helpers. All angles are radians unless a name says otherwise.
#pragma once

#include <cmath>
#include <numbers>

namespace adsec {

inline constexpr double kPi = std::numbers::pi;

constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }
constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

// Wrap to (-pi, pi].
inline double wrap_angle(double rad) {
  rad = std::fmod(rad + kPi, 2.0 * kPi);
  if (rad < 0.0) rad += 2.0 * kPi;
  return rad - kPi;
}

// Signed smallest difference a-b wrapped to (-pi, pi].
inline double angle_diff(double a, double b) { return wrap_angle(a - b); }

template <typename T>
constexpr T clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace adsec
