#include "common/table.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace adsec {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  out << to_csv();
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

}  // namespace adsec
