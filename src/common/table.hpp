// Console table / CSV rendering for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables or figures as an
// aligned text table (the "figure series"), optionally mirrored to CSV so
// the data can be re-plotted.
#pragma once

#include <string>
#include <vector>

namespace adsec {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 3);

  // Render with column alignment and a header rule.
  std::string to_string() const;
  void print() const;  // to stdout

  // Comma-separated (headers + rows); cells containing commas get quoted.
  std::string to_csv() const;
  void write_csv(const std::string& path) const;

  int rows() const { return static_cast<int>(rows_.size()); }

  // Raw cell access, for serializers layered on top (e.g. the bench
  // harness's BENCH_<name>.json writer).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& row_data() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Format helpers used across benches.
std::string fmt(double v, int precision = 3);
std::string fmt_pct(double v, int precision = 1);  // 0.84 -> "84.0%"

}  // namespace adsec
