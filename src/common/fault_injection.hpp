// Deterministic fault injection for resilience tests.
//
// Production code threads named fault points through its failure-prone
// paths (checkpoint I/O, runtime workers, the training loop); tests arm a
// point to fire a specific fault on its N-th hit and then assert that the
// system either recovers or surfaces a structured adsec::Error. Nothing is
// ever armed outside tests, and the disarmed fast path is a single relaxed
// atomic load, so instrumented code pays ~nothing in production.
//
// Points are hit concurrently by pool workers, so all bookkeeping is
// mutex-guarded; the armed() fast path stays lock-free.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace adsec {

enum class FaultKind {
  FailWrite,      // file write throws before any byte reaches disk
  TruncateWrite,  // half the bytes are written, then the "process dies"
  FlipByte,       // one payload byte is flipped; the write "succeeds"
  Throw,          // the instrumented code path throws adsec::Error
};

class FaultInjector {
 public:
  // Process-wide instance shared by production code and tests.
  static FaultInjector& instance();

  // Arm `point` to fire `kind` on its `fire_at`-th hit (1-based). Re-arming
  // a point replaces the previous plan and resets its hit counter.
  void arm(const std::string& point, FaultKind kind, int fire_at = 1);

  // Disarm everything and zero all hit counters (test teardown).
  void reset();

  // Record one hit of `point`; returns the armed kind if this hit fires.
  // A plan fires exactly once, then disarms itself.
  std::optional<FaultKind> fire(const std::string& point);

  // Hits recorded while `point` was armed (the disarmed fast path skips
  // counting so production code stays free).
  int hits(const std::string& point) const;

 private:
  FaultInjector() = default;

  struct Plan {
    FaultKind kind;
    int fire_at;
  };

  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, Plan> plans_;
  std::unordered_map<std::string, int> hits_;
};

inline FaultInjector& fault_injector() { return FaultInjector::instance(); }

}  // namespace adsec
