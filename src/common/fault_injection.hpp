// Deterministic fault injection for resilience tests.
//
// Production code threads named fault points through its failure-prone
// paths (checkpoint I/O, runtime workers, the training loop, the
// orchestrator's store commits and job boundaries); tests arm a point to
// fire a specific fault on its N-th hit and then assert that the system
// either recovers or surfaces a structured adsec::Error. Nothing is ever
// armed outside tests, and the disarmed fast path is a single relaxed
// atomic load, so instrumented code pays ~nothing in production.
//
// Points are hit concurrently by pool workers, so all bookkeeping is
// mutex-guarded; the armed() fast path stays lock-free.
#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/annotations.hpp"

namespace adsec {

enum class FaultKind {
  FailWrite,      // file write throws before any byte reaches disk
  TruncateWrite,  // half the bytes are written, then the "process dies"
  FlipByte,       // one payload byte is flipped; the write "succeeds"
  Throw,          // the instrumented code path throws adsec::Error
  Delay,          // the instrumented code path stalls for `param` ms
};

// What an armed point fires: the kind plus its integer parameter (delay
// milliseconds for Delay; unused by the other kinds).
struct Fault {
  FaultKind kind;
  int param{0};
};

class FaultInjector {
 public:
  // Process-wide instance shared by production code and tests.
  static FaultInjector& instance();

  // Arm `point` to fire `kind` on hits `fire_at` .. `fire_at + repeat - 1`
  // (1-based). `repeat <= 0` keeps the plan armed until reset() — useful to
  // exhaust bounded retries. Re-arming a point replaces the previous plan
  // and resets its hit counter. `param` rides along in the fired Fault
  // (delay milliseconds for FaultKind::Delay).
  void arm(const std::string& point, FaultKind kind, int fire_at = 1,
           int repeat = 1, int param = 0);

  // Disarm everything and zero all hit counters (test teardown).
  void reset();

  // Record one hit of `point`; returns the armed fault if this hit fires.
  // A plan disarms itself once its repeat window is exhausted.
  std::optional<Fault> fire(const std::string& point);

  // Hits recorded while `point` was armed (the disarmed fast path skips
  // counting so production code stays free).
  int hits(const std::string& point) const;

 private:
  FaultInjector() = default;

  struct Plan {
    FaultKind kind;
    int fire_at;
    int repeat;
    int param;
  };

  std::atomic<int> armed_count_{0};
  mutable Mutex mu_;
  std::unordered_map<std::string, Plan> plans_ ADSEC_GUARDED_BY(mu_);
  std::unordered_map<std::string, int> hits_ ADSEC_GUARDED_BY(mu_);
};

inline FaultInjector& fault_injector() { return FaultInjector::instance(); }

// Generic injection shim for code paths without bespoke fault semantics:
// fires `point` and applies the fault — Throw raises Error{Internal},
// FailWrite raises Error{Io} (a transient-looking I/O failure), Delay
// sleeps for the armed `param` milliseconds, and the write-shaping kinds
// (TruncateWrite/FlipByte) degrade to Error{Internal} since there is no
// byte stream to shape here. No-op when the point is disarmed.
void maybe_inject(const std::string& point);

}  // namespace adsec
