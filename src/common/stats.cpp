#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace adsec {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (q <= 0.0) return v.front();
  if (q >= 1.0) return v.back();
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s / static_cast<double>(xs.size()));
}

BoxStats box_stats(std::span<const double> xs) {
  BoxStats b;
  b.n = static_cast<int>(xs.size());
  if (xs.empty()) return b;
  b.min = min_of(xs);
  b.q1 = quantile(xs, 0.25);
  b.median = median(xs);
  b.q3 = quantile(xs, 0.75);
  b.max = max_of(xs);
  b.mean = mean(xs);
  return b;
}

std::string format_box(const BoxStats& b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%8.2f %8.2f %8.2f %8.2f %8.2f (mean %8.2f)",
                b.min, b.q1, b.median, b.q3, b.max, b.mean);
  return buf;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx < 1e-12 || syy < 1e-12) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / n_;
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const { return n_ < 2 ? 0.0 : m2_ / (n_ - 1); }

double RunningStats::stdev() const { return std::sqrt(variance()); }

}  // namespace adsec
