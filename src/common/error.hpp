// Structured error type for every recoverable failure in the library.
//
// The resilience layer's contract is that an injected fault, a torn write,
// or a diverged optimizer surfaces as an adsec::Error carrying a machine-
// checkable code — never a crash, a bare std::runtime_error the caller can't
// classify, or a silently wrong result. Callers branch on code() to decide
// between retry, fallback (e.g. the zoo retraining over a corrupt cache
// entry), and giving up.
#pragma once

#include <stdexcept>
#include <string>

namespace adsec {

enum class ErrorCode {
  Io,        // file open/write/read failed (possibly injected)
  Corrupt,   // bytes present but fail magic/version/CRC/shape validation
  Config,    // inconsistent or out-of-range configuration
  Diverged,  // training produced NaN/Inf beyond the recovery budget
  Usage,     // bad command-line arguments
  Internal,  // invariant violation (includes injected worker faults)
  Rejected,  // admission control refused the request (backpressure/shutdown)
};

[[nodiscard]] const char* error_code_name(ErrorCode code);

// [[nodiscard]] on the type: any future factory returning an Error by value
// (instead of throwing it) gets discard-checking for free at every call
// site, without each declaration needing its own annotation.
class [[nodiscard]] Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message);
  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace adsec
