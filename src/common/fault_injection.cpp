#include "common/fault_injection.hpp"

namespace adsec {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& point, FaultKind kind, int fire_at) {
  std::lock_guard<std::mutex> lock(mu_);
  if (plans_.find(point) == plans_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  plans_[point] = Plan{kind, fire_at};
  hits_[point] = 0;
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  hits_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

std::optional<FaultKind> FaultInjector::fire(const std::string& point) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto plan = plans_.find(point);
  if (plan == plans_.end()) return std::nullopt;
  const int hit = ++hits_[point];
  if (hit != plan->second.fire_at) return std::nullopt;
  const FaultKind kind = plan->second.kind;
  plans_.erase(plan);
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  return kind;
}

int FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

}  // namespace adsec
