#include "common/fault_injection.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace adsec {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& point, FaultKind kind, int fire_at,
                        int repeat, int param) {
  MutexLock lock(mu_);
  if (plans_.find(point) == plans_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  plans_[point] = Plan{kind, fire_at, repeat, param};
  hits_[point] = 0;
}

void FaultInjector::reset() {
  MutexLock lock(mu_);
  plans_.clear();
  hits_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

std::optional<Fault> FaultInjector::fire(const std::string& point) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return std::nullopt;
  MutexLock lock(mu_);
  auto plan = plans_.find(point);
  if (plan == plans_.end()) return std::nullopt;
  const int hit = ++hits_[point];
  const Plan& p = plan->second;
  if (hit < p.fire_at) return std::nullopt;
  const bool bounded = p.repeat > 0;
  if (bounded && hit >= p.fire_at + p.repeat - 1) {
    const Fault fault{p.kind, p.param};
    plans_.erase(plan);
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
    return fault;
  }
  return Fault{p.kind, p.param};
}

int FaultInjector::hits(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

void maybe_inject(const std::string& point) {
  const auto fault = fault_injector().fire(point);
  if (!fault) return;
  switch (fault->kind) {
    case FaultKind::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->param));
      return;
    case FaultKind::FailWrite:
      throw Error(ErrorCode::Io, "injected I/O fault at " + point);
    case FaultKind::Throw:
    case FaultKind::TruncateWrite:
    case FaultKind::FlipByte:
      throw Error(ErrorCode::Internal, "injected fault at " + point);
  }
}

}  // namespace adsec
