#include "common/logging.hpp"

#include <cstdarg>
#include <cstdio>

namespace adsec {

namespace {
LogLevel g_level = LogLevel::Info;

void vlog(LogLevel level, const char* tag, const char* fmt, va_list args) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] ", tag);
  std::vfprintf(stderr, fmt, args);
  std::fprintf(stderr, "\n");
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

#define ADSEC_LOG_IMPL(name, level, tag)        \
  void name(const char* fmt, ...) {             \
    va_list args;                               \
    va_start(args, fmt);                        \
    vlog(level, tag, fmt, args);                \
    va_end(args);                               \
  }

ADSEC_LOG_IMPL(log_debug, LogLevel::Debug, "debug")
ADSEC_LOG_IMPL(log_info, LogLevel::Info, "info")
ADSEC_LOG_IMPL(log_warn, LogLevel::Warn, "warn")
ADSEC_LOG_IMPL(log_error, LogLevel::Error, "error")

#undef ADSEC_LOG_IMPL

}  // namespace adsec
