#include "common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "telemetry/clock.hpp"

namespace adsec {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

// Parallel-runtime safety: each record is formatted into one stack buffer —
// monotonic timestamp + thread id prefix, message, newline — and emitted
// with a single fwrite, so concurrent workers never interleave mid-line.
// Messages longer than the buffer are truncated rather than split.
void vlog(LogLevel level, const char* tag, const char* fmt, va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char buf[2048];
  const double secs =
      static_cast<double>(telemetry::monotonic_ns()) * 1e-9;
  int n = std::snprintf(buf, sizeof buf, "[%12.6f] [t%02d] [%s] ", secs,
                        telemetry::current_tid(), tag);
  if (n < 0) return;
  std::size_t len = std::min(static_cast<std::size_t>(n), sizeof buf - 2);
  const int m = std::vsnprintf(buf + len, sizeof buf - 1 - len, fmt, args);
  if (m > 0) {
    len = std::min(len + static_cast<std::size_t>(m), sizeof buf - 2);
  }
  buf[len++] = '\n';
  std::fwrite(buf, 1, len, stderr);
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

#define ADSEC_LOG_IMPL(name, level, tag)        \
  void name(const char* fmt, ...) {             \
    va_list args;                               \
    va_start(args, fmt);                        \
    vlog(level, tag, fmt, args);                \
    va_end(args);                               \
  }

ADSEC_LOG_IMPL(log_debug, LogLevel::Debug, "debug")
ADSEC_LOG_IMPL(log_info, LogLevel::Info, "info")
ADSEC_LOG_IMPL(log_warn, LogLevel::Warn, "warn")
ADSEC_LOG_IMPL(log_error, LogLevel::Error, "error")

#undef ADSEC_LOG_IMPL

}  // namespace adsec
