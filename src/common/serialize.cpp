#include "common/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace adsec {

namespace {
template <typename T>
void append_raw(std::vector<std::uint8_t>& buf, T v) {
  std::uint8_t tmp[sizeof(T)];
  std::memcpy(tmp, &v, sizeof(T));
  buf.insert(buf.end(), tmp, tmp + sizeof(T));
}
}  // namespace

void BinaryWriter::write_u32(std::uint32_t v) { append_raw(buf_, v); }
void BinaryWriter::write_i64(std::int64_t v) { append_raw(buf_, v); }
void BinaryWriter::write_f64(double v) { append_raw(buf_, v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::write_f64_vector(const std::vector<double>& v) {
  write_u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) write_f64(x);
}

void BinaryWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("BinaryWriter::save: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(buf_.size()));
  if (!out) throw std::runtime_error("BinaryWriter::save: write failed for " + path);
}

BinaryReader::BinaryReader(std::vector<std::uint8_t> bytes) : buf_(std::move(bytes)) {}

BinaryReader BinaryReader::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("BinaryReader::load: cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("BinaryReader::load: read failed for " + path);
  return BinaryReader(std::move(bytes));
}

void BinaryReader::need(std::size_t n) const {
  if (pos_ + n > buf_.size()) {
    throw std::runtime_error("BinaryReader: truncated input");
  }
}

std::uint32_t BinaryReader::read_u32() {
  need(4);
  std::uint32_t v;
  std::memcpy(&v, buf_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

std::int64_t BinaryReader::read_i64() {
  need(8);
  std::int64_t v;
  std::memcpy(&v, buf_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

double BinaryReader::read_f64() {
  need(8);
  double v;
  std::memcpy(&v, buf_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

std::string BinaryReader::read_string() {
  const auto n = read_u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> BinaryReader::read_f64_vector() {
  const auto n = read_u32();
  std::vector<double> v(n);
  for (auto& x : v) x = read_f64();
  return v;
}

}  // namespace adsec
