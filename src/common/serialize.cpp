#include "common/serialize.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "telemetry/telemetry.hpp"

namespace adsec {

namespace {

// Durable-artifact I/O accounting for every checked container write/read.
struct SerializeMetrics {
  telemetry::Counter writes = telemetry::counter("serialize.writes");
  telemetry::Counter reads = telemetry::counter("serialize.reads");
  telemetry::Counter bytes_written = telemetry::counter("serialize.bytes_written");
  telemetry::Counter bytes_read = telemetry::counter("serialize.bytes_read");
};

SerializeMetrics& serialize_metrics() {
  static SerializeMetrics m;
  return m;
}

template <typename T>
void append_raw(std::vector<std::uint8_t>& buf, T v) {
  std::uint8_t tmp[sizeof(T)];
  std::memcpy(tmp, &v, sizeof(T));
  buf.insert(buf.end(), tmp, tmp + sizeof(T));
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

// "ADSC" little-endian; followed by format version, payload size, CRC32.
constexpr std::uint32_t kContainerMagic = 0x43534441u;
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;

// All checked/atomic file writes funnel through here so the fault injector
// can fail, tear, or silently corrupt exactly the N-th write of a run.
void write_file_with_faults(const std::string& path,
                            const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint8_t> out = bytes;
  std::size_t limit = out.size();
  if (const auto fault = fault_injector().fire("serialize.save")) {
    switch (fault->kind) {
      case FaultKind::FailWrite:
        throw Error(ErrorCode::Io, "injected write failure for " + path);
      case FaultKind::TruncateWrite:
        limit = out.size() / 2;
        break;
      case FaultKind::FlipByte:
        if (!out.empty()) out[out.size() / 2] ^= 0x40u;
        break;
      case FaultKind::Throw:
        throw Error(ErrorCode::Internal, "injected fault at serialize.save");
      case FaultKind::Delay:
        break;  // meaningless for a write; ignore
    }
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error(ErrorCode::Io, "cannot open " + path + " for writing");
  f.write(reinterpret_cast<const char*>(out.data()),
          static_cast<std::streamsize>(limit));
  f.flush();
  if (!f) throw Error(ErrorCode::Io, "write failed for " + path);
  if (limit != out.size()) {
    // Injected torn write: the bytes above made it out, then the process
    // "died" before finishing. Model the death as an I/O error.
    throw Error(ErrorCode::Io, "injected torn write for " + path);
  }
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::write_u32(std::uint32_t v) { append_raw(buf_, v); }
void BinaryWriter::write_i64(std::int64_t v) { append_raw(buf_, v); }
void BinaryWriter::write_f64(double v) { append_raw(buf_, v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::write_f64_vector(const std::vector<double>& v) {
  write_u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) write_f64(x);
}

void BinaryWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("BinaryWriter::save: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(buf_.size()));
  if (!out) throw std::runtime_error("BinaryWriter::save: write failed for " + path);
}

void BinaryWriter::save_checked(const std::string& path,
                                std::uint32_t format_version) const {
  ADSEC_SPAN("serialize.save_checked");
  std::vector<std::uint8_t> framed;
  framed.reserve(kHeaderSize + buf_.size());
  append_raw(framed, kContainerMagic);
  append_raw(framed, format_version);
  append_raw(framed, static_cast<std::uint64_t>(buf_.size()));
  append_raw(framed, crc32(buf_.data(), buf_.size()));
  framed.insert(framed.end(), buf_.begin(), buf_.end());

  // Write-to-temp + rename: the file at `path` is only ever replaced by a
  // complete, flushed image, so a crash at any point leaves either the old
  // file or the new one — never a torn hybrid.
  const std::string tmp = path + ".tmp";
  write_file_with_faults(tmp, framed);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw Error(ErrorCode::Io, "rename " + tmp + " -> " + path + " failed");
  }
  serialize_metrics().writes.inc();
  serialize_metrics().bytes_written.inc(framed.size());
}

BinaryReader::BinaryReader(std::vector<std::uint8_t> bytes) : buf_(std::move(bytes)) {}

BinaryReader BinaryReader::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("BinaryReader::load: cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("BinaryReader::load: read failed for " + path);
  return BinaryReader(std::move(bytes));
}

BinaryReader BinaryReader::load_checked(const std::string& path,
                                        std::uint32_t max_supported_version,
                                        std::uint32_t* format_version) {
  ADSEC_SPAN("serialize.load_checked");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw Error(ErrorCode::Io, "cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  if (size < kHeaderSize) {
    throw Error(ErrorCode::Corrupt, path + ": too short to be an adsec container (" +
                                        std::to_string(size) + " bytes)");
  }
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw Error(ErrorCode::Io, "read failed for " + path);

  // Read-side fault point: FailWrite models a transient read error (the
  // bytes on disk are fine, this attempt failed), the write-shaping kinds
  // corrupt the in-memory image so the CRC/size validation below rejects
  // it exactly as it would a damaged file.
  if (const auto fault = fault_injector().fire("serialize.load")) {
    switch (fault->kind) {
      case FaultKind::FailWrite:
        throw Error(ErrorCode::Io, "injected read failure for " + path);
      case FaultKind::TruncateWrite:
        bytes.resize(bytes.size() / 2);
        break;
      case FaultKind::FlipByte:
        bytes[bytes.size() / 2] ^= 0x40u;
        break;
      case FaultKind::Throw:
        throw Error(ErrorCode::Internal, "injected fault at serialize.load");
      case FaultKind::Delay:
        break;  // meaningless for validation; ignore
    }
  }
  if (bytes.size() < kHeaderSize) {
    throw Error(ErrorCode::Corrupt, path + ": too short to be an adsec container (" +
                                        std::to_string(bytes.size()) + " bytes)");
  }

  std::uint32_t magic = 0, version = 0, crc_stored = 0;
  std::uint64_t payload_size = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&payload_size, bytes.data() + 8, 8);
  std::memcpy(&crc_stored, bytes.data() + 16, 4);
  if (magic != kContainerMagic) {
    throw Error(ErrorCode::Corrupt, path + ": bad magic (not an adsec container)");
  }
  if (version == 0 || version > max_supported_version) {
    throw Error(ErrorCode::Corrupt,
                path + ": unsupported format version " + std::to_string(version) +
                    " (max supported " + std::to_string(max_supported_version) + ")");
  }
  if (payload_size != bytes.size() - kHeaderSize) {
    throw Error(ErrorCode::Corrupt,
                path + ": truncated (header claims " + std::to_string(payload_size) +
                    " payload bytes, file has " +
                    std::to_string(bytes.size() - kHeaderSize) + ")");
  }
  const std::uint32_t crc_actual =
      crc32(bytes.data() + kHeaderSize, static_cast<std::size_t>(payload_size));
  if (crc_actual != crc_stored) {
    throw Error(ErrorCode::Corrupt, path + ": CRC mismatch (corrupt payload)");
  }
  if (format_version != nullptr) *format_version = version;
  serialize_metrics().reads.inc();
  serialize_metrics().bytes_read.inc(size);
  return BinaryReader(std::vector<std::uint8_t>(bytes.begin() + kHeaderSize,
                                                bytes.end()));
}

void BinaryReader::need(std::size_t n) const {
  if (pos_ + n > buf_.size()) {
    throw std::runtime_error("BinaryReader: truncated input");
  }
}

std::uint32_t BinaryReader::read_u32() {
  need(4);
  std::uint32_t v;
  std::memcpy(&v, buf_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

std::int64_t BinaryReader::read_i64() {
  need(8);
  std::int64_t v;
  std::memcpy(&v, buf_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

double BinaryReader::read_f64() {
  need(8);
  double v;
  std::memcpy(&v, buf_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

std::string BinaryReader::read_string() {
  const auto n = read_u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> BinaryReader::read_f64_vector() {
  const auto n = read_u32();
  need(static_cast<std::size_t>(n) * 8);  // validate before allocating
  std::vector<double> v(n);
  for (auto& x : v) x = read_f64();
  return v;
}

}  // namespace adsec
