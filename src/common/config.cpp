#include "common/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/logging.hpp"

namespace adsec {

namespace {
std::optional<std::string> get_env(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}
}  // namespace

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig cfg;
  if (auto v = get_env("ADSEC_ZOO_DIR")) cfg.zoo_dir = *v;
  if (auto v = get_env("ADSEC_TRAIN_SCALE")) {
    try {
      cfg.train_scale = std::max(0.0, std::stod(*v));
    } catch (...) {
      log_warn("ADSEC_TRAIN_SCALE='%s' is not a number; ignored", v->c_str());
    }
  }
  if (auto v = get_env("ADSEC_EPISODES")) {
    try {
      cfg.episodes_override = std::max(1, std::stoi(*v));
    } catch (...) {
      log_warn("ADSEC_EPISODES='%s' is not a number; ignored", v->c_str());
    }
  }
  if (auto v = get_env("ADSEC_CKPT_EVERY")) {
    try {
      cfg.checkpoint_every = std::max(0, std::stoi(*v));
    } catch (...) {
      log_warn("ADSEC_CKPT_EVERY='%s' is not a number; ignored", v->c_str());
    }
  }
  if (auto v = get_env("ADSEC_LOG")) {
    if (*v == "debug") set_log_level(LogLevel::Debug);
    else if (*v == "info") set_log_level(LogLevel::Info);
    else if (*v == "warn") set_log_level(LogLevel::Warn);
    else if (*v == "error") set_log_level(LogLevel::Error);
    else if (*v == "off") set_log_level(LogLevel::Off);
    else log_warn("ADSEC_LOG='%s' unknown; ignored", v->c_str());
  }
  return cfg;
}

RuntimeConfig& runtime_config() {
  static RuntimeConfig cfg = RuntimeConfig::from_env();
  return cfg;
}

int scaled_steps(int nominal, int min_steps) {
  const double scaled = nominal * runtime_config().train_scale;
  return std::max(min_steps, static_cast<int>(scaled));
}

int eval_episodes(int nominal) {
  const auto& cfg = runtime_config();
  return cfg.episodes_override.value_or(nominal);
}

}  // namespace adsec
