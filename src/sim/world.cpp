#include "sim/world.hpp"

#include <limits>

namespace adsec {

World::World(std::shared_ptr<const Road> road, const VehicleParams& ego_params,
             const VehicleState& ego_init, std::vector<Npc> npcs,
             const WorldConfig& config)
    : road_(std::move(road)),
      ego_(ego_params, ego_init),
      npcs_(std::move(npcs)),
      config_(config) {
  ego_frenet_ = road_->project(ego_.state().position);
  history_.reserve(static_cast<std::size_t>(config_.max_steps));
}

bool World::step(const Action& ego_action, double attack_delta) {
  if (done()) return false;

  ego_.step(ego_action, config_.dt);
  for (auto& npc : npcs_) {
    double gap = 1e30, leader_speed = 0.0;
    if (npc.params().reactive) {
      // Nearest same-lane vehicle ahead: other NPCs or the ego.
      for (const auto& other : npcs_) {
        if (&other == &npc || other.lane() != npc.lane()) continue;
        const double rel = other.frenet().s - npc.frenet().s;
        if (rel > 0.0 && rel < gap) {
          gap = rel;
          leader_speed = other.vehicle().state().speed;
        }
      }
      if (road_->lane_at_offset(ego_frenet_.d) == npc.lane()) {
        const double rel = ego_frenet_.s - npc.frenet().s;
        if (rel > 0.0 && rel < gap) {
          gap = rel;
          leader_speed = ego_.state().speed;
        }
      }
    }
    npc.step(config_.dt, gap, leader_speed);
  }
  ++step_count_;
  ego_frenet_ = road_->project(ego_.state().position);

  StepRecord rec;
  rec.ego_state = ego_.state();
  rec.ego_actuation = ego_.actuation();
  rec.ego_frenet = ego_frenet_;
  rec.applied_steer_variation = ego_action.steer_variation;
  rec.attack_delta = attack_delta;
  history_.push_back(rec);

  detect_collisions();
  return !done();
}

void World::detect_collisions() {
  if (collision_) return;
  if (hits_barrier(ego_frenet_.d, 0.5 * ego_.params().width, road_->half_width())) {
    collision_ = CollisionEvent{CollisionType::Barrier, -1, step_count_};
    return;
  }
  for (std::size_t i = 0; i < npcs_.size(); ++i) {
    if (vehicles_overlap(ego_, npcs_[i].vehicle())) {
      collision_ = CollisionEvent{classify_vehicle_collision(ego_, npcs_[i].vehicle()),
                                  static_cast<int>(i), step_count_};
      return;
    }
  }
}

bool World::done() const {
  if (collision_) return true;
  if (step_count_ >= config_.max_steps) return true;
  // Episode also ends when the ego reaches the end of the mapped road.
  return ego_frenet_.s >= road_->length() - 1.0;
}

int World::passed_npcs() const {
  int passed = 0;
  for (const auto& npc : npcs_) {
    if (ego_frenet_.s > npc.frenet().s + ego_.params().length) ++passed;
  }
  return passed;
}

int World::closest_npc_index() const {
  int best = -1;
  double best_d2 = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < npcs_.size(); ++i) {
    const double d2 = (npcs_[i].vehicle().state().position - ego_.state().position).norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int World::target_npc_index() const {
  int best = -1;
  double best_d2 = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < npcs_.size(); ++i) {
    // Skip NPCs the ego has already fully passed.
    if (ego_frenet_.s > npcs_[i].frenet().s + ego_.params().length) continue;
    const double d2 = (npcs_[i].vehicle().state().position - ego_.state().position).norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace adsec
