// Background (NPC) traffic: vehicles that keep their lane at a constant
// reference speed, like the 6 m/s NPC stream in the paper's scenario.
//
// NPCs carry a small embedded lane-keeping controller rather than using the
// full modular pipeline: they are scenario furniture, not agents under test.
#pragma once

#include <memory>

#include "sim/road.hpp"
#include "sim/vehicle.hpp"

namespace adsec {

struct NpcParams {
  double ref_speed = 6.0;          // m/s (paper Sec. III-A)
  double offset_gain = 0.4;        // rad of approach angle per metre of offset
  double max_approach_angle = 0.3; // rad, caps the return-to-lane angle
  double heading_gain = 2.5;       // steering variation per rad of heading error
  double speed_gain = 0.8;         // thrust variation per m/s of speed error

  // Optional IDM-style reaction to a leader in the same lane (the ego or
  // another NPC): the NPC brakes toward the leader's speed when the gap
  // falls below the desired headway. Off by default — the paper's NPC
  // stream drives obliviously at its reference speed, which is also what
  // makes side collisions attributable purely to the attack.
  bool reactive = false;
  double idm_min_gap = 6.0;    // m
  double idm_time_gap = 1.2;   // s
};

class Npc {
 public:
  Npc(const VehicleParams& vehicle_params, const NpcParams& npc_params,
      std::shared_ptr<const Road> road, int lane, double start_s);

  // Advance one step: run the lane keeper and integrate the vehicle.
  // `leader_gap`/`leader_speed` describe the nearest same-lane vehicle ahead
  // (infinity/0 when clear); only consulted when `reactive` is set.
  void step(double dt, double leader_gap = 1e30, double leader_speed = 0.0);

  const Vehicle& vehicle() const { return vehicle_; }
  Vehicle& vehicle() { return vehicle_; }
  int lane() const { return lane_; }
  const NpcParams& params() const { return npc_params_; }

  // Current Frenet coordinates (cached each step).
  const Frenet& frenet() const { return frenet_; }

 private:
  Vehicle vehicle_;
  NpcParams npc_params_;
  std::shared_ptr<const Road> road_;  // shared with the World
  int lane_;
  Frenet frenet_{};
};

}  // namespace adsec
