// World: one episode of the freeway scenario. Owns the road, the ego
// vehicle, and the NPC stream; advances everything one 0.1 s tick at a time
// and detects/classifies collisions.
//
// The World is agent-agnostic: both the modular pipeline and the end-to-end
// policy (and the attacker wrapper) drive it through `step(Action)`.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sim/collision.hpp"
#include "sim/npc.hpp"
#include "sim/road.hpp"
#include "sim/vehicle.hpp"

namespace adsec {

struct WorldConfig {
  double dt = 0.1;      // paper: each step lasts 0.1 s
  int max_steps = 180;  // paper: episode length
};

struct CollisionEvent {
  CollisionType type{CollisionType::None};
  int npc_index{-1};  // -1 for barrier collisions
  int step{0};
};

// Per-step record used by the metrics module (trajectory deviation, attack
// effort, time-to-collision).
struct StepRecord {
  VehicleState ego_state;
  Actuation ego_actuation;
  Frenet ego_frenet;
  double applied_steer_variation{0.0};  // nu' actually fed to the plant
  double attack_delta{0.0};             // delta injected this step (0 if none)
};

class World {
 public:
  World(std::shared_ptr<const Road> road, const VehicleParams& ego_params,
        const VehicleState& ego_init, std::vector<Npc> npcs,
        const WorldConfig& config = {});

  // Advance one tick. `attack_delta` is recorded for metrics; the caller is
  // responsible for having already added it into `ego_action` (the attack
  // injection point sits between agent and plant, see attack/attack_env).
  // Returns true while the episode continues.
  bool step(const Action& ego_action, double attack_delta = 0.0);

  bool done() const;
  bool collided() const { return collision_.has_value(); }
  const std::optional<CollisionEvent>& collision() const { return collision_; }

  const Road& road() const { return *road_; }
  const std::shared_ptr<const Road>& road_ptr() const { return road_; }
  const Vehicle& ego() const { return ego_; }
  Vehicle& ego() { return ego_; }
  const std::vector<Npc>& npcs() const { return npcs_; }
  const WorldConfig& config() const { return config_; }

  int step_count() const { return step_count_; }
  double time() const { return step_count_ * config_.dt; }

  const Frenet& ego_frenet() const { return ego_frenet_; }

  // NPCs the ego has fully passed (ego s beyond npc s by one car length).
  int passed_npcs() const;

  // Index of the nearest NPC by Euclidean distance, or -1 if none.
  int closest_npc_index() const;

  // Nearest NPC that the ego has not yet passed (the overtaking target the
  // adversarial reward aims the ego at); -1 if all are passed.
  int target_npc_index() const;

  const std::vector<StepRecord>& history() const { return history_; }

 private:
  void detect_collisions();

  std::shared_ptr<const Road> road_;
  Vehicle ego_;
  std::vector<Npc> npcs_;
  WorldConfig config_;
  int step_count_{0};
  Frenet ego_frenet_{};
  std::optional<CollisionEvent> collision_;
  std::vector<StepRecord> history_;
};

}  // namespace adsec
