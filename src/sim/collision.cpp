#include "sim/collision.hpp"

#include <cmath>

#include "common/angle.hpp"

namespace adsec {

const char* to_string(CollisionType t) {
  switch (t) {
    case CollisionType::None: return "none";
    case CollisionType::Side: return "side";
    case CollisionType::RearEnd: return "rear-end";
    case CollisionType::Frontal: return "frontal";
    case CollisionType::Barrier: return "barrier";
  }
  return "?";
}

namespace {
// Project corners onto axis; return [min, max].
void project_onto(const Vec2 corners[4], const Vec2& axis, double& lo, double& hi) {
  lo = hi = corners[0].dot(axis);
  for (int i = 1; i < 4; ++i) {
    const double p = corners[i].dot(axis);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
}

bool separated_on(const Vec2 a[4], const Vec2 b[4], const Vec2& axis) {
  double alo, ahi, blo, bhi;
  project_onto(a, axis, alo, ahi);
  project_onto(b, axis, blo, bhi);
  return ahi < blo || bhi < alo;
}
}  // namespace

bool obb_overlap(const Vec2 a[4], const Vec2 b[4]) {
  // Candidate separating axes: the two edge normals of each box.
  const Vec2 axes[4] = {
      (a[1] - a[0]).perp(), (a[3] - a[0]).perp(),
      (b[1] - b[0]).perp(), (b[3] - b[0]).perp(),
  };
  for (const Vec2& axis : axes) {
    if (separated_on(a, b, axis)) return false;
  }
  return true;
}

bool vehicles_overlap(const Vehicle& a, const Vehicle& b) {
  Vec2 ca[4], cb[4];
  a.corners(ca);
  b.corners(cb);
  return obb_overlap(ca, cb);
}

CollisionType classify_vehicle_collision(const Vehicle& ego, const Vehicle& npc) {
  // Ego center expressed in the NPC's frame.
  const Vec2 rel = ego.state().position - npc.state().position;
  const Vec2 npc_fwd = npc.heading_vector();
  const double lon = rel.dot(npc_fwd);
  const double lat = rel.dot(npc_fwd.perp());

  const double norm_lon = std::abs(lon) / (0.5 * npc.params().length);
  const double norm_lat = std::abs(lat) / (0.5 * npc.params().width);

  const double rel_heading =
      std::abs(angle_diff(ego.state().heading, npc.state().heading));

  if (norm_lat > norm_lon && rel_heading < deg2rad(75.0)) {
    return CollisionType::Side;
  }
  // Contact along the NPC's longitudinal axis: behind => ego rear-ended the
  // NPC; ahead => the NPC ran into the ego (counted as frontal for the ego).
  return lon < 0.0 ? CollisionType::RearEnd : CollisionType::Frontal;
}

bool hits_barrier(double lateral_offset, double ego_half_width, double road_half_width) {
  return std::abs(lateral_offset) + ego_half_width >= road_half_width;
}

}  // namespace adsec
