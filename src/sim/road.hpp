// Road model: a multi-lane freeway described by a centerline composed of
// straight and arc segments, with a Frenet-frame projection.
//
// This substitutes CARLA Town 4 Road 23 (a gently curved freeway with no
// intersections). Lateral coordinate `d` is positive to the LEFT of the
// direction of travel; lane 0 is the right-most lane.
#pragma once

#include <vector>

#include "common/vec2.hpp"

namespace adsec {

// Pose of the centerline at arclength s.
struct RoadPose {
  Vec2 position;
  double heading{0.0};    // tangent direction, radians
  double curvature{0.0};  // 1/m, positive = turning left
};

// Frenet coordinates of a world point relative to the centerline.
struct Frenet {
  double s{0.0};  // arclength along centerline, m
  double d{0.0};  // signed lateral offset, m (positive = left)
};

struct RoadSegmentSpec {
  double length{0.0};     // arclength of the segment, m
  double curvature{0.0};  // constant curvature (0 = straight)
};

class Road {
 public:
  // Builds the road from consecutive segments starting at the origin
  // heading +x. `num_lanes` >= 1, `lane_width` > 0.
  Road(std::vector<RoadSegmentSpec> segments, int num_lanes, double lane_width);

  // Convenience: straight + gentle curve freeway used by the paper scenario.
  static Road freeway(double length = 600.0, int num_lanes = 3,
                      double lane_width = 3.5);

  // Alternating left/right sweepers — a harder geometry for trained
  // policies (generalization tests).
  static Road s_curve(double length = 600.0, int num_lanes = 3,
                      double lane_width = 3.5, double radius = 400.0);

  int num_lanes() const { return num_lanes_; }
  double lane_width() const { return lane_width_; }
  double length() const { return total_length_; }

  // Signed lateral offset of the center of lane `lane` (0 = right-most).
  double lane_center_offset(int lane) const;

  // Lane index containing lateral offset d, clamped to valid lanes.
  int lane_at_offset(double d) const;

  // Half of the drivable width; beyond this (plus vehicle half-width) the
  // vehicle is in contact with the barrier.
  double half_width() const { return 0.5 * num_lanes_ * lane_width_; }

  // Centerline pose at arclength s (clamped to [0, length]).
  RoadPose pose_at(double s) const;

  // World position of (s, d).
  Vec2 world_at(double s, double d) const;

  // Heading of the lane direction at arclength s (same as centerline).
  double heading_at(double s) const { return pose_at(s).heading; }

  // Project a world point to Frenet coordinates (nearest centerline point).
  Frenet project(const Vec2& p) const;

 private:
  struct Segment {
    double s0;         // start arclength
    double length;
    double curvature;
    Vec2 start;        // world position at s0
    double heading0;   // heading at s0
  };

  RoadPose pose_in_segment(const Segment& seg, double ds) const;

  std::vector<Segment> segments_;
  int num_lanes_;
  double lane_width_;
  double total_length_{0.0};

  // Coarse polyline lookup table for projection (refined analytically).
  struct LutEntry {
    Vec2 p;
    double s;
  };
  std::vector<LutEntry> lut_;
  double lut_step_{2.0};
};

}  // namespace adsec
