#include "sim/vehicle.hpp"

#include <cmath>

#include "common/angle.hpp"

namespace adsec {

Vehicle::Vehicle(const VehicleParams& params, const VehicleState& initial)
    : params_(params), state_(initial) {}

void Vehicle::reset(const VehicleState& initial) {
  state_ = initial;
  actuation_ = {};
  vy_ = 0.0;
  yaw_rate_ = 0.0;
}

Vec2 Vehicle::velocity() const {
  // Body-frame (vx, vy) rotated into the world; vy is 0 in kinematic mode.
  return Vec2{state_.speed, vy_}.rotated(state_.heading);
}

Vec2 Vehicle::heading_vector() const { return unit_from_heading(state_.heading); }

void Vehicle::step(const Action& action, double dt) {
  const double eps = params_.mech_limit;
  const double nu = clamp(action.steer_variation, -eps, eps);
  const double gamma = clamp(action.thrust_variation, -eps, eps);

  // Eq. 1: exponential blend of the commanded variation into the actuation.
  actuation_.steer = clamp((1.0 - params_.alpha) * nu + params_.alpha * actuation_.steer,
                           -1.0, 1.0);
  actuation_.thrust = clamp((1.0 - params_.eta) * gamma + params_.eta * actuation_.thrust,
                            -1.0, 1.0);

  // Longitudinal dynamics. Negative thrust brakes; the vehicle never reverses.
  double accel = actuation_.thrust >= 0.0 ? actuation_.thrust * params_.max_accel
                                          : actuation_.thrust * params_.max_brake;
  accel -= params_.drag * state_.speed;
  state_.speed = std::max(0.0, state_.speed + accel * dt);

  // Lateral dynamics.
  const double steer_rad = actuation_.steer * params_.max_steer_rad;
  if (params_.model == VehicleModel::Dynamic &&
      state_.speed > params_.dynamic_min_speed) {
    step_dynamic_lateral(steer_rad, dt);
  } else {
    step_kinematic_lateral(steer_rad, dt);
  }
}

void Vehicle::step_kinematic_lateral(double steer_rad, double dt) {
  // No-slip bicycle with a tyre-grip cap on yaw rate.
  double yaw_rate = state_.speed * std::tan(steer_rad) / params_.wheelbase;
  if (state_.speed > 0.1) {
    const double max_yaw = params_.max_lateral_accel / state_.speed;
    yaw_rate = clamp(yaw_rate, -max_yaw, max_yaw);
  }
  yaw_rate_ = yaw_rate;
  vy_ = 0.0;
  state_.heading = wrap_angle(state_.heading + yaw_rate * dt);
  state_.position += unit_from_heading(state_.heading) * (state_.speed * dt);
}

void Vehicle::step_dynamic_lateral(double steer_rad, double dt) {
  // Linear single-track model: slip angles at each axle generate lateral
  // tyre forces that drive lateral velocity and yaw rate. Sub-stepped for
  // stability (the model is stiff at the 0.1 s control period).
  const double lf = params_.cg_to_front;
  const double lr = params_.wheelbase - params_.cg_to_front;
  const double vx = std::max(state_.speed, params_.dynamic_min_speed);
  const int substeps = 5;
  const double h = dt / substeps;
  for (int k = 0; k < substeps; ++k) {
    const double slip_f = steer_rad - (vy_ + lf * yaw_rate_) / vx;
    const double slip_r = -(vy_ - lr * yaw_rate_) / vx;
    // Lateral forces, capped at the grip limit per axle.
    const double fy_max = 0.5 * params_.mass * params_.max_lateral_accel;
    const double fyf = clamp(params_.cornering_front * slip_f, -fy_max, fy_max);
    const double fyr = clamp(params_.cornering_rear * slip_r, -fy_max, fy_max);
    const double vy_dot = (fyf + fyr) / params_.mass - vx * yaw_rate_;
    const double r_dot = (lf * fyf - lr * fyr) / params_.yaw_inertia;
    vy_ += vy_dot * h;
    yaw_rate_ += r_dot * h;
    state_.heading = wrap_angle(state_.heading + yaw_rate_ * h);
    state_.position += Vec2{vx, vy_}.rotated(state_.heading) * h;
  }
}

void Vehicle::corners(Vec2 out[4]) const {
  const Vec2 fwd = unit_from_heading(state_.heading) * (0.5 * params_.length);
  const Vec2 left = unit_from_heading(state_.heading).perp() * (0.5 * params_.width);
  out[0] = state_.position + fwd + left;   // front-left
  out[1] = state_.position - fwd + left;   // rear-left
  out[2] = state_.position - fwd - left;   // rear-right
  out[3] = state_.position + fwd - left;   // front-right
}

}  // namespace adsec
