// Scenario builder for the paper's traffic setup (Sec. III-A): a freeway
// without intersections where the ego travels at a 16 m/s reference speed
// and must pass six NPC vehicles moving at 6 m/s within 180 steps of 0.1 s.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/world.hpp"

namespace adsec {

// Road geometry selector for scenario variants.
enum class RoadProfile { Freeway, SCurve, Straight };

struct ScenarioConfig {
  int num_lanes = 3;
  double lane_width = 3.5;
  double road_length = 600.0;
  RoadProfile road_profile = RoadProfile::Freeway;

  int num_npcs = 6;
  double npc_ref_speed = 6.0;    // m/s
  double ego_ref_speed = 16.0;   // m/s (consumed by the agents, kept here
                                 // so scenario and agents stay consistent)
  double ego_start_speed = 10.0; // m/s, ramps up to the reference
  int ego_start_lane = 1;        // middle lane
  double ego_start_s = 10.0;

  double first_npc_gap = 30.0;   // m ahead of the ego (relative arclength)
  double npc_spacing = 25.0;     // m between consecutive NPCs

  // Lane pattern for consecutive NPCs (wraps around). The default makes the
  // ego weave across all three lanes, exercising lane changes both ways.
  std::vector<int> npc_lanes = {1, 2, 1, 0, 1, 2};

  // Per-episode randomization: spawn jitter (m) and NPC speed jitter (m/s).
  double spawn_jitter = 2.0;
  double speed_jitter = 0.3;

  // IDM-style NPC reaction to a same-lane leader (off = the paper's
  // oblivious 6 m/s stream; see NpcParams::reactive).
  bool reactive_npcs = false;

  // Vehicle parameters shared by ego and NPCs (a mid-size sedan by
  // default); ablations vary e.g. the Eq. 1 retain rate alpha here.
  VehicleParams vehicle{};

  WorldConfig world;  // dt = 0.1 s, max_steps = 180
};

VehicleParams default_vehicle_params();

// Build a fresh episode world. `rng` drives the spawn jitter; pass a
// deterministic seed for reproducible episodes.
World make_scenario(const ScenarioConfig& config, Rng& rng);

// Named scenario variants for generalization studies. Every preset keeps
// the paper's 180-step / 0.1 s episode structure:
//   "paper"    the Sec. III-A setup (default-constructed ScenarioConfig)
//   "dense"    eight NPCs at tighter spacing
//   "sparse"   three NPCs far apart
//   "two-lane" two lanes only (no middle escape lane)
//   "s-curve"  alternating sweepers instead of the gentle freeway curve
//   "fast-npc" NPC stream at 9 m/s (smaller closing speed)
// Throws std::invalid_argument for unknown names.
ScenarioConfig scenario_preset(const std::string& name);

// Names accepted by scenario_preset, in presentation order.
std::vector<std::string> scenario_preset_names();

}  // namespace adsec
