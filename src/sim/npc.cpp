#include "sim/npc.hpp"

#include <algorithm>

#include "common/angle.hpp"

namespace adsec {

Npc::Npc(const VehicleParams& vehicle_params, const NpcParams& npc_params,
         std::shared_ptr<const Road> road, int lane, double start_s)
    : npc_params_(npc_params), road_(std::move(road)), lane_(lane) {
  VehicleState init;
  const double d = road_->lane_center_offset(lane);
  init.position = road_->world_at(start_s, d);
  init.heading = road_->heading_at(start_s);
  init.speed = npc_params.ref_speed;
  vehicle_ = Vehicle(vehicle_params, init);
  frenet_ = road_->project(init.position);
}

void Npc::step(double dt, double leader_gap, double leader_speed) {
  frenet_ = road_->project(vehicle_.state().position);
  const double target_d = road_->lane_center_offset(lane_);
  const double offset_err = target_d - frenet_.d;

  // Lane keeping via a clamped approach angle: aim the heading slightly
  // toward the lane center (proportional to the offset, capped), then steer
  // on the heading error. The cap keeps large displacements from saturating
  // the steering into a limit cycle.
  const double approach = clamp(npc_params_.offset_gain * offset_err,
                                -npc_params_.max_approach_angle,
                                npc_params_.max_approach_angle);
  const double desired_heading =
      wrap_angle(road_->heading_at(frenet_.s) + approach);
  const double heading_err = angle_diff(desired_heading, vehicle_.state().heading);

  // IDM-style safe-follow cap on the desired speed when reactive.
  double desired_speed = npc_params_.ref_speed;
  if (npc_params_.reactive) {
    const double headway_budget =
        leader_speed + (leader_gap - npc_params_.idm_min_gap) / npc_params_.idm_time_gap;
    desired_speed = clamp(std::min(desired_speed, headway_budget), 0.0,
                          npc_params_.ref_speed);
  }

  Action a;
  a.steer_variation = clamp(npc_params_.heading_gain * heading_err, -1.0, 1.0);
  a.thrust_variation = clamp(
      npc_params_.speed_gain * (desired_speed - vehicle_.state().speed), -1.0, 1.0);
  vehicle_.step(a, dt);
  frenet_ = road_->project(vehicle_.state().position);
}

}  // namespace adsec
