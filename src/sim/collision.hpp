// Oriented-bounding-box collision detection and contact classification.
//
// The adversarial reward (paper Sec. IV-D) pays +a for a *side* collision
// and -a for any other collision (rear-end, frontal, barrier), so the
// classifier below is part of the attack's objective, not just bookkeeping.
#pragma once

#include "common/vec2.hpp"
#include "sim/vehicle.hpp"

namespace adsec {

enum class CollisionType {
  None,
  Side,     // ego contacts the NPC laterally (the attacker's goal)
  RearEnd,  // ego runs into the NPC's rear
  Frontal,  // ego is struck on its front by the NPC's rear approaching? (ego front vs npc front)
  Barrier,  // ego leaves the drivable area
};

const char* to_string(CollisionType t);

// Separating-axis test for two oriented boxes given by their 4 corners.
bool obb_overlap(const Vec2 a[4], const Vec2 b[4]);

// True if the two vehicles' bounding boxes overlap.
bool vehicles_overlap(const Vehicle& a, const Vehicle& b);

// Classify the contact between ego and npc, assuming they overlap.
//
// The contact face is decided in the NPC's frame: if the ego center sits
// beside the NPC (normalized lateral offset exceeds normalized longitudinal
// offset) the hit is a side collision; in front/behind it is frontal or
// rear-end. A side impact additionally requires roughly parallel headings
// (within 75 degrees) — a perpendicular T-bone does not occur on a freeway
// and would otherwise be misclassified by the face test alone.
CollisionType classify_vehicle_collision(const Vehicle& ego, const Vehicle& npc);

// Barrier check: does the ego's footprint cross the road edge?
// `lateral_offset` is the ego center's Frenet d; `road_half_width` from Road.
bool hits_barrier(double lateral_offset, double ego_half_width, double road_half_width);

}  // namespace adsec
