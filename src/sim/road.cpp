#include "sim/road.hpp"

#include <cmath>
#include <stdexcept>

#include "common/angle.hpp"

namespace adsec {

Road::Road(std::vector<RoadSegmentSpec> specs, int num_lanes, double lane_width)
    : num_lanes_(num_lanes), lane_width_(lane_width) {
  if (num_lanes < 1) throw std::invalid_argument("Road: num_lanes must be >= 1");
  if (lane_width <= 0.0) throw std::invalid_argument("Road: lane_width must be > 0");
  if (specs.empty()) throw std::invalid_argument("Road: need at least one segment");

  Vec2 cursor{0.0, 0.0};
  double heading = 0.0;
  double s = 0.0;
  for (const auto& spec : specs) {
    if (spec.length <= 0.0) throw std::invalid_argument("Road: segment length must be > 0");
    Segment seg;
    seg.s0 = s;
    seg.length = spec.length;
    seg.curvature = spec.curvature;
    seg.start = cursor;
    seg.heading0 = heading;
    segments_.push_back(seg);

    // Advance cursor to the end of this segment.
    const RoadPose end = pose_in_segment(seg, spec.length);
    cursor = end.position;
    heading = end.heading;
    s += spec.length;
  }
  total_length_ = s;

  // Build the projection lookup table.
  const int n = static_cast<int>(total_length_ / lut_step_) + 1;
  lut_.reserve(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    const double si = std::min(total_length_, i * lut_step_);
    lut_.push_back({pose_at(si).position, si});
  }
}

Road Road::freeway(double length, int num_lanes, double lane_width) {
  // Straight entry, a long sweeping curve, and a straight exit — the profile
  // of a freeway section like Town 4 Road 23.
  const double straight = length * 0.3;
  const double curved = length * 0.4;
  return Road({{straight, 0.0}, {curved, 1.0 / 800.0}, {length - straight - curved, 0.0}},
              num_lanes, lane_width);
}

Road Road::s_curve(double length, int num_lanes, double lane_width, double radius) {
  const double seg = length / 4.0;
  return Road({{seg, 0.0},
               {seg, 1.0 / radius},
               {seg, -1.0 / radius},
               {seg, 1.0 / radius}},
              num_lanes, lane_width);
}

double Road::lane_center_offset(int lane) const {
  if (lane < 0 || lane >= num_lanes_) throw std::out_of_range("Road: bad lane index");
  // Lane 0 (right-most) sits at the most negative offset.
  return (lane - 0.5 * (num_lanes_ - 1)) * lane_width_;
}

int Road::lane_at_offset(double d) const {
  const double rel = d / lane_width_ + 0.5 * (num_lanes_ - 1);
  const int lane = static_cast<int>(std::floor(rel + 0.5));
  return clamp(lane, 0, num_lanes_ - 1);
}

RoadPose Road::pose_in_segment(const Segment& seg, double ds) const {
  RoadPose pose;
  if (std::abs(seg.curvature) < 1e-12) {
    pose.heading = seg.heading0;
    pose.position = seg.start + unit_from_heading(seg.heading0) * ds;
    pose.curvature = 0.0;
    return pose;
  }
  const double r = 1.0 / seg.curvature;  // signed radius
  const double dtheta = ds * seg.curvature;
  // Circle center is to the left (positive curvature) of the start pose.
  const Vec2 center = seg.start + unit_from_heading(seg.heading0).perp() * r;
  const Vec2 radial = seg.start - center;
  pose.position = center + radial.rotated(dtheta);
  pose.heading = wrap_angle(seg.heading0 + dtheta);
  pose.curvature = seg.curvature;
  return pose;
}

RoadPose Road::pose_at(double s) const {
  const double sc = clamp(s, 0.0, total_length_);
  // Segments are few (<=4); linear scan is fine and branch-predictable.
  const Segment* seg = &segments_.back();
  for (const auto& candidate : segments_) {
    if (sc <= candidate.s0 + candidate.length) {
      seg = &candidate;
      break;
    }
  }
  return pose_in_segment(*seg, sc - seg->s0);
}

Vec2 Road::world_at(double s, double d) const {
  const RoadPose pose = pose_at(s);
  return pose.position + unit_from_heading(pose.heading).perp() * d;
}

Frenet Road::project(const Vec2& p) const {
  // Coarse pass over the lookup table.
  double best_d2 = 1e300;
  double best_s = 0.0;
  for (const auto& e : lut_) {
    const double d2 = (p - e.p).norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best_s = e.s;
    }
  }
  // Refine with a few Newton-like steps: move s along the tangent component
  // of the error. Converges fast because curvature is small.
  double s = best_s;
  for (int it = 0; it < 8; ++it) {
    const RoadPose pose = pose_at(s);
    const Vec2 tangent = unit_from_heading(pose.heading);
    const double ds = (p - pose.position).dot(tangent);
    s = clamp(s + ds, 0.0, total_length_);
    if (std::abs(ds) < 1e-6) break;
  }
  const RoadPose pose = pose_at(s);
  const Vec2 normal = unit_from_heading(pose.heading).perp();
  return {s, (p - pose.position).dot(normal)};
}

}  // namespace adsec
