#include "sim/scenario.hpp"

#include <memory>
#include <stdexcept>

namespace adsec {

VehicleParams default_vehicle_params() {
  return VehicleParams{};  // defaults documented in vehicle.hpp
}

World make_scenario(const ScenarioConfig& config, Rng& rng) {
  if (config.npc_lanes.empty()) {
    throw std::invalid_argument("make_scenario: npc_lanes must not be empty");
  }
  auto build_road = [&]() {
    switch (config.road_profile) {
      case RoadProfile::SCurve:
        return Road::s_curve(config.road_length, config.num_lanes, config.lane_width);
      case RoadProfile::Straight:
        return Road({{config.road_length, 0.0}}, config.num_lanes, config.lane_width);
      case RoadProfile::Freeway:
        break;
    }
    return Road::freeway(config.road_length, config.num_lanes, config.lane_width);
  };
  auto road = std::make_shared<const Road>(build_road());
  const VehicleParams vp = config.vehicle;

  std::vector<Npc> npcs;
  npcs.reserve(static_cast<std::size_t>(config.num_npcs));
  double s = config.ego_start_s + config.first_npc_gap;
  for (int i = 0; i < config.num_npcs; ++i) {
    const int lane = config.npc_lanes[static_cast<std::size_t>(i) % config.npc_lanes.size()];
    if (lane < 0 || lane >= config.num_lanes) {
      throw std::invalid_argument("make_scenario: npc lane out of range");
    }
    NpcParams np;
    np.ref_speed =
        config.npc_ref_speed + rng.uniform(-config.speed_jitter, config.speed_jitter);
    np.reactive = config.reactive_npcs;
    const double spawn_s = s + rng.uniform(-config.spawn_jitter, config.spawn_jitter);
    npcs.emplace_back(vp, np, road, lane, spawn_s);
    s += config.npc_spacing;
  }

  VehicleState ego_init;
  ego_init.position = road->world_at(config.ego_start_s,
                                     road->lane_center_offset(config.ego_start_lane));
  ego_init.heading = road->heading_at(config.ego_start_s);
  ego_init.speed = config.ego_start_speed;

  return World(std::move(road), vp, ego_init, std::move(npcs), config.world);
}

ScenarioConfig scenario_preset(const std::string& name) {
  ScenarioConfig cfg;  // "paper"
  if (name == "paper") return cfg;
  if (name == "dense") {
    cfg.num_npcs = 8;
    cfg.npc_spacing = 18.0;
    cfg.first_npc_gap = 24.0;
    return cfg;
  }
  if (name == "sparse") {
    cfg.num_npcs = 3;
    cfg.npc_spacing = 45.0;
    cfg.first_npc_gap = 40.0;
    return cfg;
  }
  if (name == "two-lane") {
    cfg.num_lanes = 2;
    cfg.ego_start_lane = 0;
    cfg.npc_lanes = {0, 1, 0, 1, 0, 1};
    return cfg;
  }
  if (name == "s-curve") {
    cfg.road_profile = RoadProfile::SCurve;
    return cfg;
  }
  if (name == "fast-npc") {
    cfg.npc_ref_speed = 9.0;
    // Slower closing speed: stretch spacing so six overtakes still fit in
    // 180 steps.
    cfg.npc_spacing = 18.0;
    return cfg;
  }
  throw std::invalid_argument("scenario_preset: unknown preset '" + name + "'");
}

std::vector<std::string> scenario_preset_names() {
  return {"paper", "dense", "sparse", "two-lane", "s-curve", "fast-npc"};
}

}  // namespace adsec
