// Vehicle model: kinematic bicycle with the paper's actuation law (Eq. 1).
//
// Agents (and attackers) do not command absolute actuation. They command a
// *variation* (nu for steering, gamma for thrust) in [-eps, eps]; the applied
// actuation is the exponential blend
//     a_t = (1 - alpha) * nu_t + alpha * a_{t-1}        (paper Eq. 1)
// which models actuator inertia and the per-step mechanical change limit.
// The action-space attack perturbs nu: nu' = nu + delta, |delta| <= budget.
#pragma once

#include "common/vec2.hpp"

namespace adsec {

// Lateral-dynamics fidelity. Kinematic: no-slip bicycle with a grip cap on
// yaw rate (fast, the default; matches the regime the paper's attacks
// exploit). Dynamic: linear-tyre single-track model with lateral-velocity
// and yaw-rate states — captures understeer and slip transients at speed.
enum class VehicleModel { Kinematic, Dynamic };

struct VehicleParams {
  double wheelbase = 2.9;          // m
  double length = 4.7;             // bounding box, m
  double width = 2.0;              // bounding box, m
  double max_steer_rad = 1.2217;   // 70 degrees (paper Sec. III-C)
  double max_accel = 4.0;          // m/s^2 at full throttle
  double max_brake = 8.0;          // m/s^2 at full brake
  double drag = 0.05;              // linear speed damping, 1/s
  double max_lateral_accel = 8.0;  // tyre grip limit, m/s^2
  double alpha = 0.8;              // steering retain rate (Eq. 1)
  double eta = 0.8;                // thrust retain rate (Eq. 1)
  double mech_limit = 1.0;         // eps: variation clip (Eq. 1)

  VehicleModel model = VehicleModel::Kinematic;
  // Dynamic-model parameters (mid-size sedan).
  double mass = 1500.0;            // kg
  double yaw_inertia = 2250.0;     // kg m^2
  double cg_to_front = 1.2;        // m (lf); lr = wheelbase - lf
  double cornering_front = 8e4;    // N/rad per axle (Cf)
  double cornering_rear = 8e4;     // N/rad per axle (Cr)
  double dynamic_min_speed = 1.0;  // below this, fall back to kinematic
};

// Commanded actuation *variations* per Eq. 1. Values are clipped to the
// mechanical limit eps when applied.
struct Action {
  double steer_variation{0.0};   // nu in [-eps, eps]
  double thrust_variation{0.0};  // gamma in [-eps, eps]; negative = brake
};

// Normalized applied actuation; steer/thrust in [-1, 1].
struct Actuation {
  double steer{0.0};
  double thrust{0.0};
};

struct VehicleState {
  Vec2 position;        // center of the bounding box, world frame
  double heading{0.0};  // radians
  double speed{0.0};    // m/s, always >= 0 (no reverse on a freeway)
};

class Vehicle {
 public:
  Vehicle() = default;
  Vehicle(const VehicleParams& params, const VehicleState& initial);

  // Advance one simulation step of `dt` seconds under the given variations.
  // Applies Eq. 1 smoothing, the mechanical clip, and the grip limit.
  void step(const Action& action, double dt);

  const VehicleState& state() const { return state_; }
  const VehicleParams& params() const { return params_; }
  const Actuation& actuation() const { return actuation_; }

  Vec2 velocity() const;           // world-frame velocity vector
  Vec2 heading_vector() const;     // unit vector along heading

  // Corners of the oriented bounding box (counter-clockwise).
  void corners(Vec2 out[4]) const;

  // Reset kinematic state and actuation memory (a_{t-1} := 0).
  void reset(const VehicleState& initial);

  // Force applied actuation (used by tests and scripted scenarios).
  void set_actuation(const Actuation& a) { actuation_ = a; }

  // Dynamic-model internal states (0 under the kinematic model).
  double lateral_velocity() const { return vy_; }
  double yaw_rate() const { return yaw_rate_; }

 private:
  void step_kinematic_lateral(double steer_rad, double dt);
  void step_dynamic_lateral(double steer_rad, double dt);

  VehicleParams params_{};
  VehicleState state_{};
  Actuation actuation_{};  // a_{t-1} in Eq. 1

  // Dynamic-model states: body-frame lateral velocity and yaw rate.
  double vy_{0.0};
  double yaw_rate_{0.0};
};

}  // namespace adsec
