// Driving reward (paper Sec. III-C): the dot product of the vehicle's
// velocity with the privileged planner's waypoint direction, accumulated per
// 0.1 s step, minus penalties for collisions. "From a vague requirement
// (driving along the road without collision) to precise instruction (driving
// along a series of legal waypoints)."
#pragma once

#include "planner/behavior.hpp"
#include "sim/world.hpp"

namespace adsec {

struct DrivingRewardConfig {
  double waypoint_weight = 1.0;    // on dt * (v . w_hat)
  double collision_penalty = 30.0; // any collision or barrier strike
  double overspeed_weight = 0.5;   // soft penalty above the reference speed
  double ref_speed = 16.0;

  // Shaped penalty for straying beyond the outer lane centers toward the
  // barriers ("safety consideration" term of the paper's aggregate reward).
  double edge_weight = 2.0;
  double edge_margin = 1.75;  // start penalizing this far inside the edge, m
};

// Reward for the step that just executed. `plan` must be the plan computed
// for this step (before World::step), `world` the post-step world.
double driving_reward(const World& world, const PlanStep& plan,
                      const DrivingRewardConfig& config = {});

// Cumulative "nominal driving reward" of a finished episode, recomputed from
// the world's step history against a reference planner — used when scoring
// episodes that were rolled out under attack.
// (Defined in core/metrics; declared here conceptually.)

}  // namespace adsec
