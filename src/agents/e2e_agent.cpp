#include "agents/e2e_agent.hpp"

#include <stdexcept>

namespace adsec {

E2EAgent::E2EAgent(GaussianPolicy policy, const CameraConfig& camera_config,
                   int frame_stack, std::string name)
    : policy_(std::move(policy)),
      observer_(camera_config, frame_stack),
      name_(std::move(name)) {
  if (policy_.obs_dim() != observer_.dim()) {
    throw std::invalid_argument("E2EAgent: policy obs_dim != camera observation dim");
  }
  if (policy_.act_dim() != 2) {
    throw std::invalid_argument("E2EAgent: policy must output [nu, gamma]");
  }
}

void E2EAgent::reset(const World& world) { observer_.reset(world); }

Action E2EAgent::decide(const World& world) {
  obs_mat_.resize(1, observer_.dim());
  observer_.observe_into(world, obs_mat_.row(0));
  policy_forward(obs_mat_, act_mat_);
  Action act;
  act.steer_variation = act_mat_(0, 0);
  act.thrust_variation = act_mat_(0, 1);
  return act;
}

void E2EAgent::stage_observation(const World& world, std::span<double> row) {
  observer_.observe_into(world, row);
}

void E2EAgent::policy_forward(const Matrix& obs, Matrix& act) const {
  if (!packed_) {
    policy_.prepack_weights(packs_);
    packed_ = true;
  }
  policy_.mean_action_into(obs, act, packs_);
}

Action E2EAgent::action_from_row(std::span<const double> row) const {
  Action act;
  act.steer_variation = row[0];
  act.thrust_variation = row[1];
  return act;
}

}  // namespace adsec
