#include "agents/e2e_agent.hpp"

#include <stdexcept>

namespace adsec {

E2EAgent::E2EAgent(GaussianPolicy policy, const CameraConfig& camera_config,
                   int frame_stack, std::string name)
    : policy_(std::move(policy)),
      observer_(camera_config, frame_stack),
      name_(std::move(name)) {
  if (policy_.obs_dim() != observer_.dim()) {
    throw std::invalid_argument("E2EAgent: policy obs_dim != camera observation dim");
  }
  if (policy_.act_dim() != 2) {
    throw std::invalid_argument("E2EAgent: policy must output [nu, gamma]");
  }
}

void E2EAgent::reset(const World& world) { observer_.reset(world); }

Action E2EAgent::decide(const World& world) {
  row_into(obs_mat_, observer_.observe(world));
  policy_.mean_action_into(obs_mat_, act_mat_);
  Action act;
  act.steer_variation = act_mat_(0, 0);
  act.thrust_variation = act_mat_(0, 1);
  return act;
}

}  // namespace adsec
