#include "agents/e2e_agent.hpp"

#include <stdexcept>

namespace adsec {

E2EAgent::E2EAgent(GaussianPolicy policy, const CameraConfig& camera_config,
                   int frame_stack, std::string name)
    : policy_(std::move(policy)),
      observer_(camera_config, frame_stack),
      name_(std::move(name)) {
  if (policy_.obs_dim() != observer_.dim()) {
    throw std::invalid_argument("E2EAgent: policy obs_dim != camera observation dim");
  }
  if (policy_.act_dim() != 2) {
    throw std::invalid_argument("E2EAgent: policy must output [nu, gamma]");
  }
}

void E2EAgent::reset(const World& world) { observer_.reset(world); }

Action E2EAgent::decide(const World& world) {
  const std::vector<double> obs = observer_.observe(world);
  const Matrix a = policy_.mean_action(Matrix::from_vector(obs));
  Action act;
  act.steer_variation = a(0, 0);
  act.thrust_variation = a(0, 1);
  return act;
}

}  // namespace adsec
