// Capability interface for cross-episode batched inference.
//
// A DrivingAgent whose decide() is "stage an observation, run one fixed
// policy forward, decode the action row" can additionally implement
// BatchPolicy. The episode-lane scheduler (runtime/lane_scheduler.hpp)
// detects the capability via dynamic_cast and then amortizes the policy
// forwards of N in-flight episodes into ONE B x obs_dim GEMM per control
// step:
//
//   gather:   lane i  ->  stage_observation(world_i, obs.row(i))
//   forward:  policy_forward(obs, act)        // one batched MLP forward
//   scatter:  action_from_row(act.row(i))  ->  lane i
//
// Contract (what makes batched == serial bit-identical):
//   * stage_observation must advance exactly the sensor state decide()
//     would (same pushes, same values), writing the observation instead of
//     returning it;
//   * policy_forward must be row-independent and implemented on the
//     *_into kernel path, whose row-batched forwards are bit-identical to
//     per-row forwards within a dispatch tier (see nn/simd.hpp);
//   * action_from_row must apply exactly decide()'s post-processing;
//   * decide(world) must remain equivalent to the staged sequence — the
//     scheduler falls back to per-lane decide() for non-batchable agents
//     and for fleets of one.
//
// The scheduler may run the forward on ANY lane's agent, so factories must
// produce identical policies — the same requirement the parallel batch
// runner already imposes (core/experiment.hpp).
#pragma once

#include <span>

#include "agents/agent.hpp"
#include "nn/matrix.hpp"

namespace adsec {

class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;

  virtual int policy_obs_dim() const = 0;
  virtual int policy_act_dim() const = 0;

  // Write this agent's observation of `world` into `row` (length
  // policy_obs_dim()), advancing sensor state exactly like decide().
  virtual void stage_observation(const World& world, std::span<double> row) = 0;

  // act = policy(obs): obs is B x policy_obs_dim(), act resized to
  // B x policy_act_dim(). Must be const — the scheduler runs it on one
  // lane's agent for the whole fleet.
  virtual void policy_forward(const Matrix& obs, Matrix& act) const = 0;

  // Decode one scattered action row into the Action decide() would return.
  virtual Action action_from_row(std::span<const double> row) const = 0;
};

}  // namespace adsec
