#include "agents/reward.hpp"

#include <algorithm>

namespace adsec {

double driving_reward(const World& world, const PlanStep& plan,
                      const DrivingRewardConfig& config) {
  const double dt = world.config().dt;
  const Vec2 v = world.ego().velocity();
  double r = config.waypoint_weight * dt * v.dot(plan.waypoint_dir);

  // Reward shaping aggregates multiple goals; without hard constraints the
  // agent "may drive faster for higher rewards" (paper) — this term keeps
  // the speed near the reference instead of unbounded.
  const double speed = world.ego().state().speed;
  if (speed > config.ref_speed) {
    r -= config.overspeed_weight * dt * (speed - config.ref_speed);
  }

  // Barrier-proximity shaping: linear in the intrusion past the outer lane
  // centers, so gradients point back toward the road long before contact.
  const double edge_start = world.road().half_width() - config.edge_margin;
  const double intrusion = std::abs(world.ego_frenet().d) - edge_start;
  if (intrusion > 0.0) {
    r -= config.edge_weight * dt * intrusion;
  }

  if (world.collided()) {
    r -= config.collision_penalty;
  }
  return r;
}

}  // namespace adsec
