// The modular driving pipeline (paper Sec. III-B): behaviour planner for
// lane-change/overtake decisions plus longitudinal and lateral PID
// controllers that trace the planned waypoints — the stand-in for CARLA
// Autopilot in "aggressive mode".
#pragma once

#include "agents/agent.hpp"
#include "control/lateral.hpp"
#include "control/longitudinal.hpp"
#include "planner/behavior.hpp"

namespace adsec {

struct ModularAgentConfig {
  BehaviorConfig behavior;
  LateralConfig lateral;
  LongitudinalConfig longitudinal;
};

class ModularAgent : public DrivingAgent {
 public:
  explicit ModularAgent(const ModularAgentConfig& config = {});

  void reset(const World& world) override;
  Action decide(const World& world) override;
  std::string name() const override { return "modular"; }

  // The plan computed by the most recent decide() — exposed so the
  // experiment harness can log the reference trajectory and so the
  // privileged reward can reuse this planner.
  const PlanStep& last_plan() const { return last_plan_; }
  BehaviorPlanner& planner() { return planner_; }

 private:
  ModularAgentConfig config_;
  BehaviorPlanner planner_;
  LateralController lateral_;
  LongitudinalController longitudinal_;
  PlanStep last_plan_{};
};

}  // namespace adsec
