#include "agents/driving_env.hpp"

#include <stdexcept>

#include "common/angle.hpp"

namespace adsec {

DrivingEnv::DrivingEnv(const ScenarioConfig& scenario, const CameraConfig& camera,
                       const DrivingRewardConfig& reward,
                       const BehaviorConfig& privileged_planner, int frame_stack)
    : scenario_(scenario),
      reward_config_(reward),
      observer_(camera, frame_stack),
      privileged_planner_(privileged_planner) {}

const World& DrivingEnv::world() const {
  if (!world_) throw std::logic_error("DrivingEnv::world: reset() not called");
  return *world_;
}

std::vector<double> DrivingEnv::reset(std::uint64_t seed) {
  Rng rng(seed);
  world_.emplace(make_scenario(scenario_, rng));
  privileged_planner_.reset(scenario_.ego_start_lane);
  observer_.reset(*world_);
  return observer_.observe(*world_);
}

EnvStep DrivingEnv::step(std::span<const double> action) {
  if (!world_) throw std::logic_error("DrivingEnv::step: reset() not called");
  if (action.size() != 2) throw std::invalid_argument("DrivingEnv::step: need 2 actions");
  if (world_->done()) throw std::logic_error("DrivingEnv::step: episode finished");

  // The privileged plan for this step defines the reward's waypoint vector.
  const PlanStep plan = privileged_planner_.plan(*world_);

  Action a;
  a.steer_variation = clamp(action[0], -1.0, 1.0);
  a.thrust_variation = clamp(action[1], -1.0, 1.0);

  double delta = 0.0;
  if (attack_hook_) {
    delta = attack_hook_(*world_, a);
    a.steer_variation = clamp(a.steer_variation + delta, -1.0, 1.0);
  }

  world_->step(a, delta);

  EnvStep out;
  out.reward = driving_reward(*world_, plan, reward_config_);
  out.done = world_->done();
  out.obs = observer_.observe(*world_);
  return out;
}

}  // namespace adsec
