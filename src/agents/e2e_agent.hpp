// End-to-end DRL driving agent (paper Sec. III-C): a SAC-trained policy
// mapping stacked semantic-camera frames directly to actuation variations
// [nu, gamma]. At deployment the policy is fixed and deterministic (mean
// action), matching the paper's attack assumption of stationary victim
// dynamics.
#pragma once

#include "agents/agent.hpp"
#include "nn/gaussian_policy.hpp"
#include "sensors/camera.hpp"

namespace adsec {

class E2EAgent : public DrivingAgent {
 public:
  E2EAgent(GaussianPolicy policy, const CameraConfig& camera_config = {},
           int frame_stack = 3, std::string name = "e2e");

  void reset(const World& world) override;
  Action decide(const World& world) override;
  std::string name() const override { return name_; }

  const GaussianPolicy& policy() const { return policy_; }
  GaussianPolicy& policy() { return policy_; }
  int obs_dim() const { return observer_.dim(); }

 private:
  GaussianPolicy policy_;
  StackedCameraObserver observer_;
  std::string name_;
  Matrix obs_mat_, act_mat_;  // decide() staging, reused every control cycle
};

}  // namespace adsec
