// End-to-end DRL driving agent (paper Sec. III-C): a SAC-trained policy
// mapping stacked semantic-camera frames directly to actuation variations
// [nu, gamma]. At deployment the policy is fixed and deterministic (mean
// action), matching the paper's attack assumption of stationary victim
// dynamics.
#pragma once

#include "agents/agent.hpp"
#include "agents/batch_policy.hpp"
#include "nn/gaussian_policy.hpp"
#include "sensors/camera.hpp"

namespace adsec {

// Implements BatchPolicy: decide() is exactly stage -> mean-action forward
// -> decode, so the lane scheduler can run one B x obs_dim forward for a
// whole fleet of in-flight episodes with bit-identical results.
class E2EAgent : public DrivingAgent, public BatchPolicy {
 public:
  E2EAgent(GaussianPolicy policy, const CameraConfig& camera_config = {},
           int frame_stack = 3, std::string name = "e2e");

  void reset(const World& world) override;
  Action decide(const World& world) override;
  std::string name() const override { return name_; }

  int policy_obs_dim() const override { return observer_.dim(); }
  int policy_act_dim() const override { return 2; }
  void stage_observation(const World& world, std::span<double> row) override;
  void policy_forward(const Matrix& obs, Matrix& act) const override;
  Action action_from_row(std::span<const double> row) const override;

  const GaussianPolicy& policy() const { return policy_; }
  // Mutable access drops the pre-packed weights: the caller may be about to
  // change the policy, and packs must never outlive the weights they froze.
  GaussianPolicy& policy() {
    packs_.clear();
    packed_ = false;
    return policy_;
  }
  int obs_dim() const { return observer_.dim(); }

 private:
  GaussianPolicy policy_;
  StackedCameraObserver observer_;
  std::string name_;
  Matrix obs_mat_, act_mat_;  // decide() staging, reused every control cycle
  // Pre-packed trunk weights, built lazily on the first forward: safe
  // because policy_ is this agent's private copy and the only mutation
  // door (non-const policy()) drops the packs. mutable for lazy packing
  // and the automatic repack when a test switches the dispatch tier;
  // like the staging matrices, not for concurrent use of one agent.
  mutable std::vector<WeightPack> packs_;
  mutable bool packed_{false};
};

}  // namespace adsec
