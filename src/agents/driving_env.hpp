// RL environment for training the end-to-end driving policy pi_v.
//
// Observations: stacked semantic-camera frames (sensors/camera.hpp).
// Actions:      [steer variation nu, thrust variation gamma], each in [-1,1].
// Reward:       privileged waypoint-following reward (agents/reward.hpp)
//               shaped by the modular pipeline's planner, per Sec. III-C.
//
// The same environment doubles as the *adversarial training* environment
// for the defenses: an optional attacker hook injects a steering
// perturbation delta each step (nu' = nu + delta), so fine-tuning
// (Sec. VI-A) and PNN column training (Sec. VI-B) train the driving policy
// in the presence of the camera-based attack.
#pragma once

#include <functional>
#include <optional>

#include "agents/reward.hpp"
#include "planner/behavior.hpp"
#include "rl/env.hpp"
#include "sensors/camera.hpp"
#include "sim/scenario.hpp"

namespace adsec {

// Attack hook: given the victim's chosen action and the current world,
// return the steering perturbation delta (already scaled by the budget).
// Called each step after the policy acts and before the world advances.
using AttackHook = std::function<double(const World&, const Action&)>;

class DrivingEnv : public Env {
 public:
  DrivingEnv(const ScenarioConfig& scenario, const CameraConfig& camera = {},
             const DrivingRewardConfig& reward = {},
             const BehaviorConfig& privileged_planner = {}, int frame_stack = 3);

  std::vector<double> reset(std::uint64_t seed) override;
  EnvStep step(std::span<const double> action) override;

  int obs_dim() const override { return observer_.dim(); }
  int act_dim() const override { return 2; }

  // Install/remove the adversarial hook (defense training).
  void set_attack_hook(AttackHook hook) { attack_hook_ = std::move(hook); }
  void clear_attack_hook() { attack_hook_ = nullptr; }

  const World& world() const;
  const ScenarioConfig& scenario() const { return scenario_; }

 private:
  ScenarioConfig scenario_;
  DrivingRewardConfig reward_config_;
  StackedCameraObserver observer_;
  BehaviorPlanner privileged_planner_;
  std::optional<World> world_;
  AttackHook attack_hook_;
};

}  // namespace adsec
