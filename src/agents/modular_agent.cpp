#include "agents/modular_agent.hpp"

namespace adsec {

ModularAgent::ModularAgent(const ModularAgentConfig& config)
    : config_(config),
      planner_(config.behavior),
      lateral_(config.lateral),
      longitudinal_(config.longitudinal) {}

void ModularAgent::reset(const World& world) {
  planner_.reset(world.road().lane_at_offset(world.ego_frenet().d));
  lateral_.reset();
  longitudinal_.reset();
  last_plan_ = {};
}

Action ModularAgent::decide(const World& world) {
  last_plan_ = planner_.plan(world);
  Action a;
  const double dt = world.config().dt;
  a.steer_variation = lateral_.update(world.ego(), last_plan_, world.ego_frenet(), dt);
  a.thrust_variation = longitudinal_.update(world.ego(), last_plan_.desired_speed, dt);
  return a;
}

}  // namespace adsec
