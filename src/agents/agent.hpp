// Driving-agent interface shared by the two architectures the paper
// compares: the modular pipeline (planner + PID) and the end-to-end DRL
// policy. The experiment runner and the attack wrapper drive victims only
// through this interface, so attacks are architecture-agnostic — exactly
// the black-box premise of the paper's threat model.
#pragma once

#include <string>

#include "sim/world.hpp"

namespace adsec {

class DrivingAgent {
 public:
  virtual ~DrivingAgent() = default;

  // Called once at episode start, before the first decide().
  virtual void reset(const World& world) = 0;

  // Produce this tick's actuation variations from the current world. The
  // agent may only use information its own sensors could provide.
  virtual Action decide(const World& world) = 0;

  virtual std::string name() const = 0;
};

}  // namespace adsec
