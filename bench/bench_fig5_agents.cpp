// Regenerates Fig. 5: trajectory-deviation RMSE vs mean attack effort for
// the modular and end-to-end agents under camera-based attacks with budgets
// 0..1.2 (step 0.1), 10 rounds each — plus the Sec. V-B time-to-collision
// statistics.
//
// Paper shape targets: successful attacks dominate above effort ~0.6
// (modular) / ~0.5 (e2e); the modular agent tracks better at low effort;
// mean time-to-collision 1.14 s (min 0.9) vs modular, 0.87 s (min 0.3)
// vs e2e.
#include "bench_common.hpp"

#include "core/experiment.hpp"

using namespace adsec;
using namespace adsec::bench;

namespace {

struct SweepResult {
  std::vector<double> efforts;
  std::vector<bool> successes;
  std::vector<double> deviations;
  std::vector<double> ttc;  // successful episodes only
};

SweepResult sweep_agent(const std::string& label, const AgentFactory& make_agent,
                        bool attacker_vs_modular, int rounds) {
  ExperimentConfig cfg = zoo().experiment();
  SweepResult out;

  // Train/load the attack policy once, serially, before any workers fork;
  // each worker's attacker is then built from a copy.
  const GaussianPolicy attack_policy = attacker_vs_modular
                                           ? zoo().camera_attacker_vs_modular()
                                           : zoo().camera_attacker_vs_e2e();

  Table t({"budget", "episodes", "mean effort", "route RMSE", "ref-traj RMSE",
           "side collisions", "mean ttc (s)"});
  for (int bi = 0; bi <= 12; ++bi) {
    const double budget = bi * 0.1;
    AttackerFactory make_attacker;
    if (budget > 0.0) {
      make_attacker = [&attack_policy, budget] {
        return std::make_unique<LearnedCameraAttacker>(
            attack_policy, budget, zoo().camera(), zoo().frame_stack());
      };
    }
    // Seeds match the serial sweep: episode r of budget bi uses
    // kEvalSeedBase + 1000*bi + r, and the batch comes back in r order.
    // Lane-batched inference (ADSEC_LANES) shares one policy forward
    // across in-flight episodes without changing any result bit.
    ParallelEvalOptions run_opts;
    run_opts.jobs = bench_jobs();
    run_opts.batch_lanes = bench_lanes();
    run_opts.with_reference = true;
    const auto ms = run_batch_parallel(
        make_agent, make_attacker, cfg, rounds,
        kEvalSeedBase + 1000 * static_cast<std::uint64_t>(bi), run_opts);
    RunningStats eff, route_dev, ref_dev, ttc;
    int side = 0;
    for (const EpisodeMetrics& m : ms) {
      out.efforts.push_back(m.attack_effort);
      out.successes.push_back(m.side_collision);
      out.deviations.push_back(m.plan_deviation_rmse);
      eff.add(m.attack_effort);
      route_dev.add(m.plan_deviation_rmse);
      ref_dev.add(m.deviation_rmse);
      if (m.side_collision) {
        ++side;
        if (m.time_to_collision >= 0.0) {
          ttc.add(m.time_to_collision);
          out.ttc.push_back(m.time_to_collision);
        }
      }
    }
    t.add_row({fmt(budget, 1), std::to_string(rounds), fmt(eff.mean(), 3),
               fmt(route_dev.mean(), 3), fmt(ref_dev.mean(), 3),
               std::to_string(side), ttc.count() > 0 ? fmt(ttc.mean(), 2) : "-"});
  }
  std::printf("-- Fig. 5: %s agent under camera attack --\n", label.c_str());
  t.print();
  maybe_write_csv(t, "fig5_" + label);

  // Effort level above which successes dominate (>50% of episodes in a 0.1
  // effort band are successful).
  double dominance = -1.0;
  for (double lo = 0.0; lo < 1.2; lo += 0.1) {
    int n = 0, s = 0;
    for (std::size_t i = 0; i < out.efforts.size(); ++i) {
      if (out.efforts[i] >= lo && out.efforts[i] < lo + 0.1) {
        ++n;
        s += out.successes[i] ? 1 : 0;
      }
    }
    if (n >= 3 && s * 2 > n) {
      dominance = lo;
      break;
    }
  }
  if (dominance >= 0.0) {
    std::printf("successes dominate above effort ~%.1f "
                "(paper: ~0.6 modular, ~0.5 e2e)\n",
                dominance);
  }
  if (!out.ttc.empty()) {
    std::printf("time to collision: mean %.2f s, min %.2f s "
                "(paper: 1.14/0.9 modular, 0.87/0.3 e2e; human driver min 1.25 s)\n",
                mean(out.ttc), min_of(out.ttc));
  }
  std::printf("\n");
  return out;
}

}  // namespace

int main() {
  bench_init("fig5_agents");
  set_log_level(LogLevel::Warn);
  print_header("Resilience of modular vs end-to-end agents",
               "Fig. 5(a)/(b) and Sec. V-B timing");
  const int rounds = eval_episodes(10);

  const AgentFactory modular = [] { return zoo().make_modular_agent(); };
  const SweepResult mod = sweep_agent("modular", modular, /*vs_modular=*/true, rounds);

  // Resolve pi_ori serially; workers then instantiate agents from copies.
  const GaussianPolicy pi_ori = zoo().driving_policy();
  const AgentFactory e2e = [&pi_ori] {
    return std::make_unique<E2EAgent>(pi_ori, zoo().camera(), zoo().frame_stack());
  };
  const SweepResult e = sweep_agent("e2e", e2e, /*vs_modular=*/false, rounds);

  // Headline comparison: tracking error at low effort.
  RunningStats mod_low, e2e_low;
  for (std::size_t i = 0; i < mod.efforts.size(); ++i) {
    if (mod.efforts[i] < 0.4 && !mod.successes[i]) mod_low.add(mod.deviations[i]);
  }
  for (std::size_t i = 0; i < e.efforts.size(); ++i) {
    if (e.efforts[i] < 0.4 && !e.successes[i]) e2e_low.add(e.deviations[i]);
  }
  std::printf("low-effort (<0.4) tracking RMSE: modular %.3f vs e2e %.3f "
              "(paper: modular maintains smaller errors)\n",
              mod_low.mean(), e2e_low.mean());
  return 0;
}
