// Regenerates the paper's learning-from-teacher claim (Sec. IV-E): "the
// same training process is ineffective for IMU-based policies due to the
// lack of correlation between location information and the IMU trace."
//
// Four attackers on the same e2e victim at full budget:
//   camera            — the teacher's own modality (upper bound)
//   imu (full)        — oracle BC warm start + p_se teacher term
//   imu (no p_se)     — oracle BC warm start, no teacher during RL
//   imu (pure SAC)    — neither curriculum nor teacher (the paper's
//                       "same process as camera" baseline)
#include "bench_common.hpp"

#include "core/experiment.hpp"

using namespace adsec;
using namespace adsec::bench;

int main() {
  bench_init("teacher");
  set_log_level(LogLevel::Info);
  print_header("Learning-from-teacher ablation for the IMU attacker",
               "Sec. IV-E");
  const int episodes = eval_episodes(15);
  ExperimentConfig cfg = zoo().experiment();
  auto victim = zoo().make_e2e_agent();
  const ImuConfig imu_cfg = zoo().imu();

  Table t({"attacker", "success rate", "mean adv reward", "mean nominal reward"});
  auto eval_attacker = [&](const std::string& label, Attacker& att) {
    const auto ms = run_batch(*victim, &att, cfg, episodes, kEvalSeedBase);
    RunningStats adv, nom;
    for (const auto& m : ms) {
      adv.add(m.adv_reward);
      nom.add(m.nominal_reward);
    }
    t.add_row({label, fmt_pct(success_rate(ms)), fmt(adv.mean(), 1),
               fmt(nom.mean(), 1)});
  };

  auto cam = zoo().make_camera_attacker(1.0);
  eval_attacker("camera (teacher modality)", *cam);
  LearnedImuAttacker imu_full(zoo().imu_attacker(), 1.0, imu_cfg);
  eval_attacker("imu, BC + p_se (paper's scheme)", imu_full);
  LearnedImuAttacker imu_nopse(zoo().imu_attacker_no_pse(), 1.0, imu_cfg);
  eval_attacker("imu, BC only (no p_se)", imu_nopse);
  LearnedImuAttacker imu_pure(zoo().imu_attacker_pure_sac(), 1.0, imu_cfg);
  eval_attacker("imu, pure SAC (no guidance)", imu_pure);

  t.print();
  maybe_write_csv(t, "teacher_ablation");
  std::printf("\nExpected ordering: the unguided IMU policy barely attacks — the\n"
              "inertial trace alone gives SAC no gradient toward the collision;\n"
              "guidance (oracle labels and/or the p_se imitation term) closes\n"
              "most of the gap to the camera modality, reproducing the paper's\n"
              "motivation for learning-from-teacher.\n");
  return 0;
}
