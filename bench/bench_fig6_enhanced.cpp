// Regenerates Fig. 6: box plots of the cumulative nominal driving reward for
// the original end-to-end agent and the four enhanced agents
// (pi_adv,rho=1/11, pi_adv,rho=1/2, pi_pnn,sigma=0.2, pi_pnn,sigma=0.4)
// under camera-based attacks with budgets {0, 0.25, 0.5, 0.75, 1}.
//
// Paper shape targets: fine-tuned agents beat pi_ori under attack but lose
// nominal performance at eps in {0, 0.25} (catastrophic forgetting); PNN
// agents keep nominal performance at small budgets and match each other at
// high budgets (same second column).
#include "bench_common.hpp"

#include "core/experiment.hpp"
#include "defense/pnn_agent.hpp"

using namespace adsec;
using namespace adsec::bench;

namespace {

constexpr double kBudgets[] = {0.0, 0.25, 0.5, 0.75, 1.0};

void sweep(const std::string& label, DrivingAgent& agent,
           PnnSwitchedAgent* pnn_switcher, int episodes, Table& summary) {
  ExperimentConfig cfg = zoo().experiment();
  std::vector<std::string> row{label};
  for (double budget : kBudgets) {
    auto attacker = zoo().make_camera_attacker(budget);
    if (pnn_switcher != nullptr) pnn_switcher->set_attack_budget_estimate(budget);
    const auto ms = run_batch(agent, budget > 0.0 ? attacker.get() : nullptr, cfg,
                              episodes, kEvalSeedBase);
    const auto rewards =
        collect(ms, [](const EpisodeMetrics& m) { return m.nominal_reward; });
    const BoxStats b = box_stats(rewards);
    row.push_back(fmt(b.mean, 1) + " [" + fmt(b.q1, 0) + "," + fmt(b.q3, 0) + "]");
  }
  summary.add_row(std::move(row));
}

}  // namespace

int main() {
  bench_init("fig6_enhanced");
  set_log_level(LogLevel::Info);
  print_header("Nominal driving reward of original vs enhanced agents under attack",
               "Fig. 6, Sec. VI");
  const int episodes = eval_episodes(30);

  Table summary({"agent", "eps=0.00", "eps=0.25", "eps=0.50", "eps=0.75",
                 "eps=1.00"});

  auto ori = zoo().make_e2e_agent();
  sweep("pi_ori", *ori, nullptr, episodes, summary);

  auto ft11 = zoo().make_finetuned_agent(1.0 / 11.0);
  sweep("pi_adv,rho=1/11", *ft11, nullptr, episodes, summary);

  auto ft2 = zoo().make_finetuned_agent(0.5);
  sweep("pi_adv,rho=1/2", *ft2, nullptr, episodes, summary);

  auto pnn02 = zoo().make_pnn_agent(0.2);
  sweep("pi_pnn,sigma=0.2", *pnn02, pnn02.get(), episodes, summary);

  auto pnn04 = zoo().make_pnn_agent(0.4);
  sweep("pi_pnn,sigma=0.4", *pnn04, pnn04.get(), episodes, summary);

  std::printf("mean nominal reward [q1,q3] per attack budget:\n");
  summary.print();
  maybe_write_csv(summary, "fig6");
  return 0;
}
