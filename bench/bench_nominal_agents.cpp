// Regenerates the paper's Sec. III-B/C nominal-performance claims:
//   - modular pipeline: passes all NPC vehicles without collision, accurate
//     trajectory following;
//   - end-to-end agent: completes all 180 steps, overtakes ~5.96/6 NPCs per
//     episode over 30 episodes, no collisions.
#include "bench_common.hpp"

#include "core/experiment.hpp"

using namespace adsec;
using namespace adsec::bench;

namespace {

void report(const std::string& name, DrivingAgent& agent, int episodes) {
  ExperimentConfig cfg = zoo().experiment();
  const auto ms = run_batch(agent, nullptr, cfg, episodes, kEvalSeedBase);

  RunningStats passed, reward, steps;
  int collisions = 0;
  for (const auto& m : ms) {
    passed.add(m.passed_npcs);
    reward.add(m.nominal_reward);
    steps.add(m.steps);
    collisions += m.collision ? 1 : 0;
  }
  Table t({"agent", "episodes", "passed npcs (mean/6)", "steps (mean)",
           "nominal reward (mean±sd)", "collisions"});
  t.add_row({name, std::to_string(episodes), fmt(passed.mean(), 2),
             fmt(steps.mean(), 1), fmt(reward.mean(), 1) + " ± " + fmt(reward.stdev(), 1),
             std::to_string(collisions)});
  t.print();
  maybe_write_csv(t, "nominal_" + name);
}

}  // namespace

int main() {
  bench_init("nominal_agents");
  set_log_level(LogLevel::Info);
  print_header("Nominal driving performance of both agents",
               "Sec. III-B (modular: all passed, no collision) / "
               "Sec. III-C (e2e: 5.96/6 over 30 episodes, no collision)");

  const int episodes = eval_episodes(30);
  auto modular = zoo().make_modular_agent();
  report("modular", *modular, episodes);
  auto e2e = zoo().make_e2e_agent();
  report("e2e", *e2e, episodes);
  return 0;
}
