// Serving-path benchmark: sustained throughput and per-class latency tails
// of the adsec_serve evaluation server. Drives a mixed victim x attacker
// grid through the bounded admission queue at several worker counts and
// reports requests/s plus the p50/p90/p95/p99 latency rows the server's own
// telemetry accumulates — the same report `adsec_serve` prints on shutdown.
#include "bench_common.hpp"

#include <atomic>

#include "serve/report.hpp"
#include "serve/server.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/metrics.hpp"

using namespace adsec;
using namespace adsec::bench;
using namespace adsec::serve;

namespace {

EvalRequest make_request(int n, const std::string& attacker) {
  EvalRequest req;
  req.id = "b" + std::to_string(n);
  req.agent = "modular";
  req.attacker = attacker;
  req.budget = 0.8;
  req.seed = kEvalSeedBase + static_cast<std::uint64_t>(n);
  req.episodes = 1;
  return req;
}

}  // namespace

int main() {
  bench_init("serve");
  set_log_level(LogLevel::Warn);
  print_header("Evaluation server throughput and latency tails",
               "serving-path extension (no paper figure)");

  const std::vector<std::string> attackers = {"none", "noise", "oracle", "full"};
  const int rounds = eval_episodes(12);
  const int requests = rounds * static_cast<int>(attackers.size());

  Table throughput({"workers", "requests", "completed", "wall s", "req/s"});
  Table latency({"workers", "class", "count", "mean ms", "p50 ms", "p90 ms",
                 "p95 ms", "p99 ms"});

  std::vector<int> worker_counts;
  for (const int w : {1, 2, bench_jobs()}) {
    bool seen = false;
    for (const int prev : worker_counts) seen = seen || prev == w;
    if (!seen) worker_counts.push_back(w);
  }

  for (const int workers : worker_counts) {
    telemetry::reset_metrics_values();
    std::atomic<int> terminal{0};
    ServerOptions opts;
    opts.workers = workers;
    opts.queue_depth = static_cast<std::size_t>(requests);
    opts.zoo = &zoo();
    const std::uint64_t start_ns = telemetry::monotonic_ns();
    {
      EvalServer server(opts, [&](const ResultRecord& r) {
        if (r.status == "done" || r.status == "failed" || r.status == "rejected") {
          terminal.fetch_add(1);
        }
      });
      int n = 0;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& attacker : attackers) {
          server.submit(make_request(n++, attacker), {});
        }
      }
      server.drain();
    }
    const double wall_s =
        static_cast<double>(telemetry::monotonic_ns() - start_ns) / 1e9;
    const LatencyReport report = build_latency_report();
    throughput.add_row({std::to_string(workers), std::to_string(requests),
                        std::to_string(report.completed), fmt(wall_s, 3),
                        fmt(static_cast<double>(terminal.load()) / wall_s, 2)});
    for (const auto& c : report.classes) {
      latency.add_row({std::to_string(workers), c.request_class,
                       std::to_string(c.count), fmt(c.mean_ms, 3), fmt(c.p50_ms, 3),
                       fmt(c.p90_ms, 3), fmt(c.p95_ms, 3), fmt(c.p99_ms, 3)});
    }
  }

  throughput.print();
  maybe_write_csv(throughput, "serve_throughput");
  std::printf("\n");
  latency.print();
  maybe_write_csv(latency, "serve_latency");
  return 0;
}
