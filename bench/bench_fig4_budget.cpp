// Regenerates Fig. 4: box plots of (a) cumulative nominal driving reward and
// (b) cumulative adversarial reward across attack budgets, for camera-based
// and IMU-based attacks on the end-to-end driving agent.
//
// Paper shape targets: both attacks strengthen with budget; camera attack
// beats IMU (higher mean adversarial reward, smaller variance); a sharp
// transition between eps = 0.25 and eps = 0.75; camera attack at eps = 1
// cuts the nominal driving reward by roughly 84%.
#include "bench_common.hpp"

#include "core/experiment.hpp"

using namespace adsec;
using namespace adsec::bench;

namespace {

void sweep(const std::string& label, bool imu, int episodes) {
  ExperimentConfig cfg = zoo().experiment();
  auto agent = zoo().make_e2e_agent();

  Table nominal({"budget", "min", "q1", "median", "q3", "max", "mean"});
  Table adversarial({"budget", "min", "q1", "median", "q3", "max", "mean",
                     "success rate"});
  double nominal_at_zero = 0.0, nominal_at_one = 0.0;

  for (double budget : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::unique_ptr<Attacker> attacker;
    if (imu) {
      attacker = zoo().make_imu_attacker(budget);
    } else {
      attacker = zoo().make_camera_attacker(budget);
    }
    const auto ms =
        run_batch(*agent, budget > 0.0 ? attacker.get() : nullptr, cfg, episodes,
                  kEvalSeedBase);
    const auto rewards =
        collect(ms, [](const EpisodeMetrics& m) { return m.nominal_reward; });
    const auto adv = collect(ms, [](const EpisodeMetrics& m) { return m.adv_reward; });
    const BoxStats rb = box_stats(rewards);
    const BoxStats ab = box_stats(adv);
    nominal.add_row_values({budget, rb.min, rb.q1, rb.median, rb.q3, rb.max, rb.mean}, 2);
    adversarial.add_row({fmt(budget, 2), fmt(ab.min, 2), fmt(ab.q1, 2),
                         fmt(ab.median, 2), fmt(ab.q3, 2), fmt(ab.max, 2),
                         fmt(ab.mean, 2), fmt_pct(success_rate(ms))});
    if (budget == 0.0) nominal_at_zero = rb.mean;
    if (budget == 1.0) nominal_at_one = rb.mean;
  }

  std::printf("-- Fig. 4(a) nominal driving reward, %s attack --\n", label.c_str());
  nominal.print();
  maybe_write_csv(nominal, "fig4a_" + label);
  std::printf("\n-- Fig. 4(b) adversarial reward, %s attack --\n", label.c_str());
  adversarial.print();
  maybe_write_csv(adversarial, "fig4b_" + label);
  if (nominal_at_zero > 1e-9) {
    std::printf("\n%s attack at eps=1.00 reduces nominal reward by %s "
                "(paper, camera: ~84%%)\n\n",
                label.c_str(),
                fmt_pct(1.0 - nominal_at_one / nominal_at_zero).c_str());
  }
}

}  // namespace

int main() {
  bench_init("fig4_budget");
  set_log_level(LogLevel::Info);
  print_header("Attack effect vs attack budget (camera vs IMU)",
               "Fig. 4(a)/(b), Sec. V-A");
  const int episodes = eval_episodes(30);
  sweep("camera", /*imu=*/false, episodes);
  sweep("imu", /*imu=*/true, episodes);
  return 0;
}
