// Extension beyond the paper: the Simplex switcher driven by a run-time
// attack detector instead of the idealized known-budget assumption
// (implementing the "magnitude of a detected perturbation as a proxy of the
// attack budget" suggestion of Sec. VI-B / the conclusion).
//
// Compares, across attack budgets: the original agent, the PNN agent with
// the idealized switcher, and the PNN agent with the detector-driven
// switcher — plus the detector's alarm behaviour.
#include "bench_common.hpp"

#include "core/experiment.hpp"
#include "defense/pnn_agent.hpp"
#include "defense/simplex_agent.hpp"

using namespace adsec;
using namespace adsec::bench;

int main() {
  bench_init("detector");
  set_log_level(LogLevel::Info);
  print_header("Detector-driven Simplex switcher (extension)",
               "Sec. VI-B switcher discussion / conclusion");
  const int episodes = eval_episodes(15);
  ExperimentConfig cfg = zoo().experiment();

  auto ori = zoo().make_e2e_agent();
  auto pnn_ideal = zoo().make_pnn_agent(0.2);
  DetectorSwitchedAgent pnn_det(zoo().driving_policy(), zoo().pnn_column(), 0.2,
                                DetectorConfig{}, zoo().camera(), 3);

  Table t({"agent", "budget", "mean nominal reward", "attack success rate"});
  Table alarms({"budget", "episodes with alarm", "false-alarm episodes"});

  for (double budget : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto attacker = zoo().make_camera_attacker(budget);
    Attacker* att = budget > 0.0 ? attacker.get() : nullptr;

    const auto ms_ori = run_batch(*ori, att, cfg, episodes, kEvalSeedBase);
    pnn_ideal->set_attack_budget_estimate(budget);
    const auto ms_ideal = run_batch(*pnn_ideal, att, cfg, episodes, kEvalSeedBase);

    int alarmed = 0;
    std::vector<EpisodeMetrics> ms_det;
    for (int k = 0; k < episodes; ++k) {
      const EpisodeMetrics m = run_episode(pnn_det, att, cfg,
                                           kEvalSeedBase + static_cast<std::uint64_t>(k));
      ms_det.push_back(m);
      alarmed += pnn_det.detector().attack_detected() ? 1 : 0;
    }

    auto add = [&](const std::string& name, const std::vector<EpisodeMetrics>& ms) {
      RunningStats r;
      for (const auto& m : ms) r.add(m.nominal_reward);
      t.add_row({name, fmt(budget, 2), fmt(r.mean(), 1), fmt_pct(success_rate(ms))});
    };
    add("pi_ori", ms_ori);
    add("pnn (ideal switcher)", ms_ideal);
    add("pnn (detector)", ms_det);

    alarms.add_row({fmt(budget, 2),
                    std::to_string(alarmed) + "/" + std::to_string(episodes),
                    budget == 0.0 ? std::to_string(alarmed) : "-"});
  }

  t.print();
  std::printf("\ndetector alarm behaviour (alarms at budget 0 are false alarms):\n");
  alarms.print();
  maybe_write_csv(t, "detector_switcher");
  std::printf("\nReading the results: the detector-driven switcher tracks the "
              "idealized one at low and mid budgets — silent at budget 0 "
              "(keeping pi_ori's full nominal reward) and switching within a "
              "few control cycles of the first injection. At the maximum "
              "budget the picture is honest but sobering: a full-strength "
              "strike collides in ~0.5 s, faster than any residual-based "
              "alarm can debounce — which is exactly why the paper's Simplex "
              "discussion treats run-time attack detection as the open "
              "problem rather than a solved component.\n");
  return 0;
}
