// Regenerates Fig. 7: trajectory deviation vs attack effort for the four
// enhanced driving agents under camera-based attacks (budgets 0..1.2 step
// 0.1, 10 rounds each).
//
// Paper shape targets: average tracking error ~0.038 (rho=1/11), ~0.027
// (rho=1/2), ~0.02 (sigma=0.4), ~0.017 (sigma=0.2); rho=1/11 shifts the
// successful-attack onset right but has outliers at low effort (forgetting);
// PNN agents have no successes below effort ~0.4 (sigma=0.4) / ~0.6
// (sigma=0.2).
#include "bench_common.hpp"

#include "core/experiment.hpp"
#include "defense/pnn_agent.hpp"

using namespace adsec;
using namespace adsec::bench;

namespace {

void sweep(const std::string& label, DrivingAgent& agent,
           PnnSwitchedAgent* pnn_switcher, int rounds) {
  ExperimentConfig cfg = zoo().experiment();
  Table t({"budget", "mean effort", "deviation RMSE (mean)", "side collisions"});
  RunningStats all_dev;
  double min_success_effort = 1e9;

  for (int bi = 0; bi <= 12; ++bi) {
    const double budget = bi * 0.1;
    auto attacker = zoo().make_camera_attacker(budget);
    if (pnn_switcher != nullptr) pnn_switcher->set_attack_budget_estimate(budget);
    RunningStats eff, dev;
    int side = 0;
    for (int r = 0; r < rounds; ++r) {
      const std::uint64_t seed = kEvalSeedBase + 1000 * static_cast<std::uint64_t>(bi) +
                                 static_cast<std::uint64_t>(r);
      const EpisodeMetrics m = evaluate_with_reference(
          agent, budget > 0.0 ? attacker.get() : nullptr, cfg, seed);
      eff.add(m.attack_effort);
      dev.add(m.deviation_rmse);
      all_dev.add(m.deviation_rmse);
      if (m.side_collision) {
        ++side;
        min_success_effort = std::min(min_success_effort, m.attack_effort);
      }
    }
    t.add_row({fmt(budget, 1), fmt(eff.mean(), 3), fmt(dev.mean(), 3),
               std::to_string(side)});
  }
  std::printf("-- Fig. 7: %s --\n", label.c_str());
  t.print();
  std::printf("average tracking error across all efforts: %.3f\n", all_dev.mean());
  if (min_success_effort < 1e9) {
    std::printf("earliest successful attack at effort %.2f\n\n", min_success_effort);
  } else {
    std::printf("no successful attacks at any effort\n\n");
  }
  maybe_write_csv(t, "fig7_" + label);
}

}  // namespace

int main() {
  bench_init("fig7_enhanced_dev");
  set_log_level(LogLevel::Info);
  print_header("Deviation vs effort for the enhanced driving agents",
               "Fig. 7(a)-(d), Sec. VI");
  const int rounds = eval_episodes(10);

  auto ft11 = zoo().make_finetuned_agent(1.0 / 11.0);
  sweep("pi_adv,rho=1/11", *ft11, nullptr, rounds);
  auto ft2 = zoo().make_finetuned_agent(0.5);
  sweep("pi_adv,rho=1/2", *ft2, nullptr, rounds);
  auto pnn04 = zoo().make_pnn_agent(0.4);
  sweep("pi_pnn,sigma=0.4", *pnn04, pnn04.get(), rounds);
  auto pnn02 = zoo().make_pnn_agent(0.2);
  sweep("pi_pnn,sigma=0.2", *pnn02, pnn02.get(), rounds);
  return 0;
}
