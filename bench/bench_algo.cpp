// Algorithm-generality ablation: the camera-based action-space attack
// trained with SAC (the paper's algorithm) vs TD3 (deterministic policy
// gradients). If the resilience findings were an artifact of SAC's
// stochastic policy, a TD3 attacker would behave differently; in practice
// both learners converge to the same lurk-then-strike behaviour.
#include "bench_common.hpp"

#include "core/experiment.hpp"

using namespace adsec;
using namespace adsec::bench;

int main() {
  bench_init("algo");
  set_log_level(LogLevel::Info);
  print_header("Attack algorithm ablation: SAC vs TD3 (extension)",
               "Sec. III-C algorithm choice");
  const int episodes = eval_episodes(15);
  ExperimentConfig cfg = zoo().experiment();
  auto victim = zoo().make_e2e_agent();

  Table t({"algorithm", "budget", "success rate", "mean adv reward",
           "mean nominal reward"});
  for (double budget : {0.75, 1.0}) {
    auto sac_att = zoo().make_camera_attacker(budget);
    auto td3_att = zoo().make_td3_attacker(budget);
    for (Attacker* att : {static_cast<Attacker*>(sac_att.get()),
                          static_cast<Attacker*>(td3_att.get())}) {
      const auto ms = run_batch(*victim, att, cfg, episodes, kEvalSeedBase);
      RunningStats adv, nom;
      for (const auto& m : ms) {
        adv.add(m.adv_reward);
        nom.add(m.nominal_reward);
      }
      t.add_row({att->name() == "camera-attack" ? "SAC" : "TD3", fmt(budget, 2),
                 fmt_pct(success_rate(ms)), fmt(adv.mean(), 1), fmt(nom.mean(), 1)});
    }
  }
  t.print();
  maybe_write_csv(t, "algo_ablation");
  std::printf("\nBoth algorithms learn the same attack given the same reward "
              "shaping and oracle curriculum — the susceptibility is a "
              "property of the victim's action space, not of the attacker's "
              "learning algorithm.\n");
  return 0;
}
