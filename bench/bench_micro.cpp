// Micro-benchmarks (google-benchmark): throughput of the building blocks —
// simulator stepping, Frenet projection, sensor rendering, policy inference,
// and SAC gradient updates. Not a paper figure; used to size training runs.
#include <benchmark/benchmark.h>

#include "agents/modular_agent.hpp"
#include "core/experiment.hpp"
#include "nn/gaussian_policy.hpp"
#include "rl/sac.hpp"
#include "runtime/parallel_eval.hpp"
#include "sensors/camera.hpp"
#include "sensors/imu.hpp"
#include "sim/scenario.hpp"

namespace adsec {
namespace {

World fresh_world(std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  Rng rng(seed);
  return make_scenario(cfg, rng);
}

void BM_WorldStep(benchmark::State& state) {
  World w = fresh_world();
  for (auto _ : state) {
    if (w.done()) {
      state.PauseTiming();
      w = fresh_world();
      state.ResumeTiming();
    }
    w.step({0.05, 0.3});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldStep);

void BM_RoadProject(benchmark::State& state) {
  const Road road = Road::freeway();
  Rng rng(2);
  std::vector<Vec2> points;
  for (int i = 0; i < 256; ++i) {
    points.push_back(road.world_at(rng.uniform(0.0, road.length()),
                                   rng.uniform(-5.0, 5.0)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(road.project(points[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoadProject);

void BM_CameraObserve(benchmark::State& state) {
  World w = fresh_world();
  CameraSensor cam;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.observe(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CameraObserve);

void BM_ImuObserve(benchmark::State& state) {
  World w = fresh_world();
  ImuSensor imu;
  imu.reset(w);
  imu.update(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imu.observation());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImuObserve);

void BM_PolicyInference(benchmark::State& state) {
  Rng rng(3);
  const int obs_dim = StackedCameraObserver({}, 3).dim();
  GaussianPolicy pi = GaussianPolicy::make_mlp(obs_dim, {64, 64}, 2, rng);
  Matrix obs = Matrix::randn(1, obs_dim, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pi.mean_action(obs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyInference);

void BM_ModularDecide(benchmark::State& state) {
  World w = fresh_world();
  ModularAgent agent;
  agent.reset(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.decide(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModularDecide);

// Episode throughput of the parallel rollout runtime vs the serial batch
// loop, on the same 64-episode modular-agent workload. Arg is the worker
// count (0 = the serial run_batch baseline); items/sec == episodes/sec, so
// the per-thread-count speedup reads directly off the report.
void BM_EpisodeBatch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  constexpr int kEpisodes = 64;
  const ExperimentConfig cfg;
  const AgentFactory make_agent = [] { return std::make_unique<ModularAgent>(); };
  for (auto _ : state) {
    if (jobs == 0) {
      ModularAgent agent;
      benchmark::DoNotOptimize(run_batch(agent, nullptr, cfg, kEpisodes, 1));
    } else {
      benchmark::DoNotOptimize(run_batch_parallel(make_agent, AttackerFactory{}, cfg,
                                                  kEpisodes, 1,
                                                  /*with_reference=*/false, jobs));
    }
  }
  state.SetItemsProcessed(state.iterations() * kEpisodes);
}
BENCHMARK(BM_EpisodeBatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SacUpdate(benchmark::State& state) {
  const int obs_dim = static_cast<int>(state.range(0));
  SacConfig cfg;
  cfg.batch_size = 32;
  Rng rng(4);
  Sac sac(obs_dim, 2, cfg, rng);
  ReplayBuffer buf(4096, obs_dim, 2);
  std::vector<double> obs(static_cast<std::size_t>(obs_dim));
  for (int i = 0; i < 512; ++i) {
    for (auto& v : obs) v = rng.uniform(-1.0, 1.0);
    const double act[2] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    buf.add(obs, act, rng.uniform(), obs, false);
  }
  for (auto _ : state) {
    sac.update(buf, rng);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SacUpdate)->Arg(64)->Arg(267);

}  // namespace
}  // namespace adsec

BENCHMARK_MAIN();
