// Micro-benchmarks (google-benchmark): throughput of the building blocks —
// simulator stepping, Frenet projection, sensor rendering, policy inference,
// SAC gradient updates, and the telemetry hot paths. Not a paper figure;
// used to size training runs and to enforce the telemetry overhead budget
// (disabled-path instrumentation must stay ≤ 5 ns/op — see the
// telemetry_overhead table this binary writes into BENCH_micro.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "agents/e2e_agent.hpp"
#include "agents/modular_agent.hpp"
#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "nn/gaussian_policy.hpp"
#include "nn/simd.hpp"
#include "rl/sac.hpp"
#include "runtime/parallel_eval.hpp"
#include "sensors/camera.hpp"
#include "sensors/imu.hpp"
#include "sim/scenario.hpp"
#include "telemetry/telemetry.hpp"

namespace adsec {
namespace {

World fresh_world(std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  Rng rng(seed);
  return make_scenario(cfg, rng);
}

void BM_WorldStep(benchmark::State& state) {
  World w = fresh_world();
  for (auto _ : state) {
    if (w.done()) {
      state.PauseTiming();
      w = fresh_world();
      state.ResumeTiming();
    }
    w.step({0.05, 0.3});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldStep);

void BM_RoadProject(benchmark::State& state) {
  const Road road = Road::freeway();
  Rng rng(2);
  std::vector<Vec2> points;
  for (int i = 0; i < 256; ++i) {
    points.push_back(road.world_at(rng.uniform(0.0, road.length()),
                                   rng.uniform(-5.0, 5.0)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(road.project(points[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoadProject);

void BM_CameraObserve(benchmark::State& state) {
  World w = fresh_world();
  CameraSensor cam;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.observe(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CameraObserve);

void BM_ImuObserve(benchmark::State& state) {
  World w = fresh_world();
  ImuSensor imu;
  imu.reset(w);
  imu.update(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imu.observation());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImuObserve);

void BM_PolicyInference(benchmark::State& state) {
  Rng rng(3);
  const int obs_dim = StackedCameraObserver({}, 3).dim();
  GaussianPolicy pi = GaussianPolicy::make_mlp(obs_dim, {64, 64}, 2, rng);
  Matrix obs = Matrix::randn(1, obs_dim, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pi.mean_action(obs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyInference);

void BM_ModularDecide(benchmark::State& state) {
  World w = fresh_world();
  ModularAgent agent;
  agent.reset(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.decide(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModularDecide);

// Episode throughput of the parallel rollout runtime vs the serial batch
// loop, on the same 64-episode modular-agent workload. Arg is the worker
// count (0 = the serial run_batch baseline); items/sec == episodes/sec, so
// the per-thread-count speedup reads directly off the report.
void BM_EpisodeBatch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  constexpr int kEpisodes = 64;
  const ExperimentConfig cfg;
  const AgentFactory make_agent = [] { return std::make_unique<ModularAgent>(); };
  for (auto _ : state) {
    if (jobs == 0) {
      ModularAgent agent;
      benchmark::DoNotOptimize(run_batch(agent, nullptr, cfg, kEpisodes, 1));
    } else {
      benchmark::DoNotOptimize(run_batch_parallel(make_agent, AttackerFactory{}, cfg,
                                                  kEpisodes, 1,
                                                  /*with_reference=*/false, jobs));
    }
  }
  state.SetItemsProcessed(state.iterations() * kEpisodes);
}
BENCHMARK(BM_EpisodeBatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The e2e workload the lane scheduler was built for: a fleet of identical
// policy agents whose per-step GEMV collapses into one batched GEMM across
// in-flight episodes. Arg is the lane count (1 = the serial per-episode
// decide() loop); items/sec == episodes/sec. Results are bit-identical at
// every lane count — this measures throughput only. The policy is wider
// than the zoo's e2e nets so the workload is inference-bound: per-row GEMV
// streams the full 512-wide weight panels from memory every step, which is
// exactly the traffic the batched GEMM amortizes across lanes.
const GaussianPolicy& bench_e2e_policy() {
  static const GaussianPolicy policy = [] {
    Rng rng(25);
    const int obs_dim = StackedCameraObserver({}, 3).dim();
    return GaussianPolicy::make_mlp(obs_dim, {512, 512}, 2, rng);
  }();
  return policy;
}

AgentFactory bench_e2e_factory() {
  return [] {
    return std::make_unique<E2EAgent>(bench_e2e_policy(), CameraConfig{}, 3);
  };
}

void BM_BatchedDecide(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  // Enough episodes that per-lane fleet construction (each agent clones the
  // policy) amortizes away and the steady-state batched forward dominates.
  constexpr int kEpisodes = 128;
  const ExperimentConfig cfg;
  const AgentFactory make_agent = bench_e2e_factory();
  ParallelEvalOptions opts;
  opts.jobs = 1;
  opts.batch_lanes = lanes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_batch_parallel(make_agent, AttackerFactory{}, cfg, kEpisodes, 1, opts));
  }
  state.SetItemsProcessed(state.iterations() * kEpisodes);
}
BENCHMARK(BM_BatchedDecide)
    ->Arg(1)
    ->Arg(8)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- NN compute kernels --------------------------------------------------
// Blocked GEMM vs the reference:: triple loops, the shapes the training
// loops actually hit. The old-vs-new ratio table in BENCH_micro.json comes
// from write_gemm_kernels_table below; these google-benchmark entries give
// the same numbers in the standard reporter.

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  const Matrix a = Matrix::randn(n, n, rng, 1.0);
  const Matrix b = Matrix::randn(n, n, rng, 1.0);
  Matrix c;
  for (auto _ : state) {
    matmul_into(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // FLOPs
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256);

void BM_GemmReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  const Matrix a = Matrix::randn(n, n, rng, 1.0);
  const Matrix b = Matrix::randn(n, n, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmReference)->Arg(64)->Arg(256);

void BM_Gemv(benchmark::State& state) {
  // The rollout-stepping shape: one observation row through a 256-wide layer.
  Rng rng(6);
  const Matrix x = Matrix::randn(1, 256, rng, 1.0);
  const Matrix w = Matrix::randn(256, 256, rng, 0.1);
  const Matrix b = Matrix::randn(1, 256, rng, 0.1);
  Matrix y;
  for (auto _ : state) {
    linear_forward_into(y, x, w, b, Activation::ReLU);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Gemv);

void BM_MlpForwardBackward(benchmark::State& state) {
  // The acceptance shape: batch 256 through 64 -> 256 -> 256 -> 1.
  Rng rng(7);
  Mlp net({64, 256, 256, 1}, Activation::ReLU, rng);
  const Matrix x = Matrix::randn(256, 64, rng, 1.0);
  Matrix g(256, 1);
  g.fill(1.0 / 256.0);
  for (auto _ : state) {
    net.forward(x);
    net.backward(g);
    net.zero_grad();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlpForwardBackward)->Unit(benchmark::kMillisecond);

void BM_SacUpdate(benchmark::State& state) {
  const int obs_dim = static_cast<int>(state.range(0));
  SacConfig cfg;
  cfg.batch_size = 32;
  Rng rng(4);
  Sac sac(obs_dim, 2, cfg, rng);
  ReplayBuffer buf(4096, obs_dim, 2);
  std::vector<double> obs(static_cast<std::size_t>(obs_dim));
  for (int i = 0; i < 512; ++i) {
    for (auto& v : obs) v = rng.uniform(-1.0, 1.0);
    const double act[2] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    buf.add(obs, act, rng.uniform(), obs, false);
  }
  for (auto _ : state) {
    sac.update(buf, rng);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SacUpdate)->Arg(64)->Arg(267);

// ---- telemetry hot paths -------------------------------------------------
// The enabled/disabled pairs bound what instrumenting a call site costs. The
// disabled variants are the budget that matters: instrumentation stays
// compiled in everywhere, so its off-state cost is paid by every
// un-instrumented run.

void BM_TelemetryCounterEnabled(benchmark::State& state) {
  telemetry::set_metrics_enabled(true);
  telemetry::Counter c = telemetry::counter("bench.counter");
  for (auto _ : state) c.inc();
  telemetry::set_metrics_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterEnabled);

void BM_TelemetryCounterDisabled(benchmark::State& state) {
  telemetry::set_metrics_enabled(false);
  telemetry::Counter c = telemetry::counter("bench.counter");
  for (auto _ : state) c.inc();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterDisabled);

void BM_TelemetrySpanEnabled(benchmark::State& state) {
  telemetry::set_tracing_enabled(true);
  for (auto _ : state) {
    ADSEC_SPAN("bench.span");
  }
  telemetry::set_tracing_enabled(false);
  telemetry::clear_trace();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySpanEnabled);

void BM_TelemetrySpanDisabled(benchmark::State& state) {
  telemetry::set_tracing_enabled(false);
  for (auto _ : state) {
    ADSEC_SPAN("bench.span");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySpanDisabled);

// Manual ns/op measurement for the BENCH_micro.json artifact: a tight loop
// long enough to amortize the clock reads, reported per operation. Simpler
// and more portable than scraping google-benchmark's own reporter.
double measure_ns_per_op(const std::function<void()>& op) {
  constexpr int kWarmup = 1 << 16;
  constexpr int kIters = 1 << 22;  // ~4M ops per timed block
  for (int i = 0; i < kWarmup; ++i) op();
  double best = 1e300;  // best-of-3 filters scheduler noise
  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t t0 = telemetry::monotonic_ns();
    for (int i = 0; i < kIters; ++i) op();
    const std::uint64_t t1 = telemetry::monotonic_ns();
    best = std::min(best, static_cast<double>(t1 - t0) / kIters);
  }
  return best;
}

// Like measure_ns_per_op but for expensive ops: caller picks the iteration
// count (the 4M-iteration default would take hours on a 256^3 GEMM).
double measure_ns_scaled(const std::function<void()>& op, int iters) {
  const int warmup = std::max(1, iters / 4);
  for (int i = 0; i < warmup; ++i) op();
  double best = 1e300;  // best-of-3 filters scheduler noise
  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t t0 = telemetry::monotonic_ns();
    for (int i = 0; i < iters; ++i) op();
    const std::uint64_t t1 = telemetry::monotonic_ns();
    best = std::min(best, static_cast<double>(t1 - t0) / iters);
  }
  return best;
}

// The pre-PR compute path, reconstructed from the reference:: kernels: an
// allocating forward (linear_forward + activation per layer) and an
// allocating backward (matmul_tn / column_sum / matmul_nt with add_inplace).
// This is the baseline the "speedup" column — and the >= 2x acceptance bar
// on the MLP row — is measured against.
struct RefMlp {
  std::vector<Matrix> w, b, wg, bg;
  Activation act{Activation::ReLU};
  std::vector<Matrix> inputs;  // cached activations, like the old Mlp

  RefMlp(const std::vector<int>& dims, Rng& rng) {
    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
      const double scale = 1.0 / std::sqrt(static_cast<double>(dims[l]));
      w.push_back(Matrix::randn(dims[l], dims[l + 1], rng, scale));
      b.push_back(Matrix(1, dims[l + 1]));
      wg.push_back(Matrix(dims[l], dims[l + 1]));
      bg.push_back(Matrix(1, dims[l + 1]));
    }
  }

  Matrix forward(const Matrix& x) {
    inputs.clear();
    inputs.push_back(x);
    Matrix h = x;
    for (std::size_t l = 0; l < w.size(); ++l) {
      h = reference::linear_forward(h, w[l], b[l]);
      if (l + 1 < w.size()) apply_activation(act, h);
      if (l + 1 < w.size()) inputs.push_back(h);
    }
    return h;
  }

  void backward(const Matrix& grad_out) {
    Matrix cur = grad_out;
    for (std::size_t i = w.size(); i-- > 0;) {
      if (i + 1 < w.size()) apply_activation_grad(act, inputs[i + 1], cur);
      wg[i].add_inplace(reference::matmul_tn(inputs[i], cur));
      bg[i].add_inplace(reference::column_sum(cur));
      cur = reference::matmul_nt(cur, w[i]);
    }
  }

  void zero_grad() {
    for (auto& m : wg) m.set_zero();
    for (auto& m : bg) m.set_zero();
  }
};

// Old-vs-new kernel table for BENCH_micro.json: blocked/fused path against
// the pre-PR reference kernels at the shapes that matter. Measured with the
// dispatch tier FORCED to scalar so the gated speedup column compares the
// blocking/fusion work alone and reads the same on any host; the SIMD gain
// on top is the separate simd_kernels table below.
void write_gemm_kernels_table() {
  simd::force_tier(simd::Tier::Scalar);
  Rng rng(21);
  Table t({"op", "new_ns", "ref_ns", "speedup"});
  auto row = [&t](const char* op, double new_ns, double ref_ns) {
    t.add_row({op, fmt(new_ns, 0), fmt(ref_ns, 0), fmt(ref_ns / new_ns, 2)});
    std::printf("kernels: %-18s new %10.0f ns  ref %10.0f ns  speedup %5.2fx\n", op,
                new_ns, ref_ns, ref_ns / new_ns);
  };

  for (const int n : {64, 256}) {
    const Matrix a = Matrix::randn(n, n, rng, 1.0);
    const Matrix b = Matrix::randn(n, n, rng, 1.0);
    Matrix c;
    const int iters = n == 64 ? 256 : 16;
    const double new_ns = measure_ns_scaled([&] { matmul_into(c, a, b); }, iters);
    const double ref_ns =
        measure_ns_scaled([&] { benchmark::DoNotOptimize(reference::matmul(a, b)); },
                          iters);
    row(n == 64 ? "gemm_64" : "gemm_256", new_ns, ref_ns);
  }

  {
    const Matrix x = Matrix::randn(1, 256, rng, 1.0);
    const Matrix w = Matrix::randn(256, 256, rng, 0.1);
    const Matrix bias = Matrix::randn(1, 256, rng, 0.1);
    Matrix y;
    const double new_ns = measure_ns_scaled(
        [&] { linear_forward_into(y, x, w, bias, Activation::ReLU); }, 2048);
    const double ref_ns = measure_ns_scaled(
        [&] {
          Matrix h = reference::linear_forward(x, w, bias);
          apply_activation(Activation::ReLU, h);
          benchmark::DoNotOptimize(h.data());
        },
        2048);
    row("gemv_1x256", new_ns, ref_ns);
  }

  {
    const std::vector<int> dims = {64, 256, 256, 1};
    Rng r1(22), r2(22);
    Mlp net(dims, Activation::ReLU, r1);
    RefMlp ref(dims, r2);
    const Matrix x = Matrix::randn(256, 64, rng, 1.0);
    Matrix g(256, 1);
    g.fill(1.0 / 256.0);
    const double new_ns = measure_ns_scaled(
        [&] {
          net.forward(x);
          net.backward(g);
          net.zero_grad();
        },
        8);
    const double ref_ns = measure_ns_scaled(
        [&] {
          ref.forward(x);
          ref.backward(g);
          ref.zero_grad();
        },
        8);
    row("mlp_fb_256x64-256-256-1", new_ns, ref_ns);
  }

  bench::maybe_write_csv(t, "gemm_kernels");
  simd::reset_tier();
}

// SIMD-vs-scalar ratio table: the same kernel shapes timed under both
// dispatch tiers in one process via force_tier. Only written when the host
// can execute the AVX2 tier — bench_compare.py skips its gates when the
// recorded simd_tier differs from the baseline's, so a scalar-only host
// neither fakes nor fails this table. Acceptance floor: >= 1.8x on
// gemm_256.
void write_simd_kernels_table() {
  const std::vector<simd::Tier> tiers = simd::available_tiers();
  if (std::find(tiers.begin(), tiers.end(), simd::Tier::Avx2) == tiers.end()) {
    std::printf(
        "simd kernels: AVX2 tier unavailable on this host — "
        "simd_kernels table skipped\n");
    return;
  }

  Rng rng(26);
  Table t({"op", "scalar_ns", "avx2_ns", "speedup"});
  auto row = [&t](const char* op, double scalar_ns, double avx2_ns) {
    t.add_row({op, fmt(scalar_ns, 0), fmt(avx2_ns, 0),
               fmt(scalar_ns / avx2_ns, 2)});
    std::printf("simd kernels: %-14s scalar %10.0f ns  avx2 %10.0f ns  "
                "speedup %5.2fx\n",
                op, scalar_ns, avx2_ns, scalar_ns / avx2_ns);
  };
  auto timed = [](simd::Tier tier, const std::function<void()>& op, int iters) {
    simd::force_tier(tier);
    const double ns = measure_ns_scaled(op, iters);
    simd::reset_tier();
    return ns;
  };

  for (const int n : {64, 256}) {
    const Matrix a = Matrix::randn(n, n, rng, 1.0);
    const Matrix b = Matrix::randn(n, n, rng, 1.0);
    Matrix c;
    const int iters = n == 64 ? 256 : 16;
    const auto op = [&] { matmul_into(c, a, b); };
    row(n == 64 ? "gemm_64" : "gemm_256", timed(simd::Tier::Scalar, op, iters),
        timed(simd::Tier::Avx2, op, iters));
  }

  {
    const Matrix x = Matrix::randn(1, 256, rng, 1.0);
    const Matrix w = Matrix::randn(256, 256, rng, 0.1);
    const Matrix bias = Matrix::randn(1, 256, rng, 0.1);
    Matrix y;
    const auto op = [&] { linear_forward_into(y, x, w, bias, Activation::ReLU); };
    row("gemv_1x256", timed(simd::Tier::Scalar, op, 2048),
        timed(simd::Tier::Avx2, op, 2048));
  }

  bench::maybe_write_csv(t, "simd_kernels");
}

// Serial-vs-batched episode throughput on the active tier: the BM_BatchedDecide
// workload (128 e2e episodes, one process) executed with batch_lanes=1 and
// with the lane scheduler gathering 8/16 in-flight episodes into one policy
// forward. Acceptance floor: >= 1.5x at 8 lanes on an AVX2 host.
void write_batched_decide_table() {
  const ExperimentConfig cfg;
  const AgentFactory make_agent = bench_e2e_factory();
  const auto run_ns = [&](int lanes) {
    ParallelEvalOptions opts;
    opts.jobs = 1;
    opts.batch_lanes = lanes;
    return measure_ns_scaled(
        [&] {
          benchmark::DoNotOptimize(run_batch_parallel(
              make_agent, AttackerFactory{}, cfg, 128, 1, opts));
        },
        2);
  };

  Table t({"op", "serial_ns", "batched_ns", "speedup"});
  const double serial_ns = run_ns(1);
  for (const int lanes : {8, 16}) {
    const double batched_ns = run_ns(lanes);
    const std::string op = "e2e_128ep_lanes" + std::to_string(lanes);
    t.add_row({op, fmt(serial_ns, 0), fmt(batched_ns, 0),
               fmt(serial_ns / batched_ns, 2)});
    std::printf("batched decide: %-18s serial %12.0f ns  batched %12.0f ns  "
                "speedup %5.2fx\n",
                op.c_str(), serial_ns, batched_ns, serial_ns / batched_ns);
  }
  bench::maybe_write_csv(t, "batched_decide");
}

// Kernel telemetry for one representative gradient step: gemm/gemv call and
// FLOP tallies plus the workspace pool footprint, mirrored into
// BENCH_micro.json so perf regressions show up as count changes too.
void write_nn_counter_table() {
  telemetry::reset_metrics_values();
  telemetry::set_metrics_enabled(true);

  Rng rng(23);
  SacConfig cfg;
  cfg.batch_size = 64;
  Sac sac(64, 2, cfg, rng);
  ReplayBuffer buf(1024, 64, 2);
  std::vector<double> obs(64);
  for (int i = 0; i < 128; ++i) {
    for (auto& v : obs) v = rng.uniform(-1.0, 1.0);
    const double act[2] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    buf.add(obs, act, rng.uniform(), obs, false);
  }
  sac.update(buf, rng);  // warm (pool growth happens here)
  telemetry::reset_metrics_values();
  sac.update(buf, rng);  // measured update

  const telemetry::MetricsSnapshot snap = telemetry::metrics_snapshot();
  telemetry::set_metrics_enabled(false);

  Table t({"counter", "value"});
  for (const char* name : {"nn.gemm.calls", "nn.gemm.flops", "nn.gemv.calls",
                           "nn.workspace.bytes", "nn.workspace.buffers"}) {
    std::uint64_t value = 0;
    for (const auto& [n, v] : snap.counters) {
      if (n == name) value = v;
    }
    t.add_row({name, std::to_string(value)});
    std::printf("sac update counters: %-22s %llu\n", name,
                static_cast<unsigned long long>(value));
  }
  bench::maybe_write_csv(t, "nn_kernel_counters");
}

void write_overhead_table() {
  telemetry::Counter c = telemetry::counter("bench.overhead_counter");
  telemetry::Histogram h = telemetry::histogram(
      "bench.overhead_hist", {1, 2, 4, 8, 16, 32, 64});

  Table t({"op", "state", "ns_per_op"});
  auto row = [&t](const char* op, const char* on, double ns) {
    t.add_row({op, on, fmt(ns, 2)});
    std::printf("telemetry overhead: %-16s %-8s %6.2f ns/op\n", op, on, ns);
  };

  telemetry::set_metrics_enabled(false);
  telemetry::set_tracing_enabled(false);
  telemetry::set_flight_enabled(false);
  row("counter.inc", "disabled", measure_ns_per_op([&] { c.inc(); }));
  row("histogram.observe", "disabled", measure_ns_per_op([&] { h.observe(7.0); }));
  row("span", "disabled", measure_ns_per_op([] { ADSEC_SPAN("bench.overhead"); }));
  row("flight.note", "disabled",
      measure_ns_per_op([] { telemetry::flight_note("bench.overhead"); }));

  telemetry::set_metrics_enabled(true);
  row("counter.inc", "enabled", measure_ns_per_op([&] { c.inc(); }));
  row("histogram.observe", "enabled", measure_ns_per_op([&] { h.observe(7.0); }));
  telemetry::set_metrics_enabled(false);

  telemetry::set_tracing_enabled(true);
  row("span", "enabled", measure_ns_per_op([] { ADSEC_SPAN("bench.overhead"); }));
  telemetry::set_tracing_enabled(false);
  telemetry::clear_trace();

  telemetry::set_flight_enabled(true);
  row("flight.note", "enabled",
      measure_ns_per_op([] { telemetry::flight_note("bench.overhead"); }));
  telemetry::set_flight_enabled(false);
  telemetry::clear_flight();

  bench::maybe_write_csv(t, "telemetry_overhead");
}

}  // namespace
}  // namespace adsec

// Custom main instead of BENCHMARK_MAIN(): same google-benchmark run, plus
// the telemetry-overhead table and the BENCH_micro.json summary.
int main(int argc, char** argv) {
  adsec::bench::bench_init("micro");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  adsec::write_gemm_kernels_table();
  adsec::write_simd_kernels_table();
  adsec::write_batched_decide_table();
  adsec::write_nn_counter_table();
  adsec::write_overhead_table();
  return 0;
}
