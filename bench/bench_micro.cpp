// Micro-benchmarks (google-benchmark): throughput of the building blocks —
// simulator stepping, Frenet projection, sensor rendering, policy inference,
// SAC gradient updates, and the telemetry hot paths. Not a paper figure;
// used to size training runs and to enforce the telemetry overhead budget
// (disabled-path instrumentation must stay ≤ 5 ns/op — see the
// telemetry_overhead table this binary writes into BENCH_micro.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>

#include "agents/modular_agent.hpp"
#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "nn/gaussian_policy.hpp"
#include "rl/sac.hpp"
#include "runtime/parallel_eval.hpp"
#include "sensors/camera.hpp"
#include "sensors/imu.hpp"
#include "sim/scenario.hpp"
#include "telemetry/telemetry.hpp"

namespace adsec {
namespace {

World fresh_world(std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  Rng rng(seed);
  return make_scenario(cfg, rng);
}

void BM_WorldStep(benchmark::State& state) {
  World w = fresh_world();
  for (auto _ : state) {
    if (w.done()) {
      state.PauseTiming();
      w = fresh_world();
      state.ResumeTiming();
    }
    w.step({0.05, 0.3});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldStep);

void BM_RoadProject(benchmark::State& state) {
  const Road road = Road::freeway();
  Rng rng(2);
  std::vector<Vec2> points;
  for (int i = 0; i < 256; ++i) {
    points.push_back(road.world_at(rng.uniform(0.0, road.length()),
                                   rng.uniform(-5.0, 5.0)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(road.project(points[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoadProject);

void BM_CameraObserve(benchmark::State& state) {
  World w = fresh_world();
  CameraSensor cam;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.observe(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CameraObserve);

void BM_ImuObserve(benchmark::State& state) {
  World w = fresh_world();
  ImuSensor imu;
  imu.reset(w);
  imu.update(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imu.observation());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImuObserve);

void BM_PolicyInference(benchmark::State& state) {
  Rng rng(3);
  const int obs_dim = StackedCameraObserver({}, 3).dim();
  GaussianPolicy pi = GaussianPolicy::make_mlp(obs_dim, {64, 64}, 2, rng);
  Matrix obs = Matrix::randn(1, obs_dim, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pi.mean_action(obs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyInference);

void BM_ModularDecide(benchmark::State& state) {
  World w = fresh_world();
  ModularAgent agent;
  agent.reset(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.decide(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModularDecide);

// Episode throughput of the parallel rollout runtime vs the serial batch
// loop, on the same 64-episode modular-agent workload. Arg is the worker
// count (0 = the serial run_batch baseline); items/sec == episodes/sec, so
// the per-thread-count speedup reads directly off the report.
void BM_EpisodeBatch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  constexpr int kEpisodes = 64;
  const ExperimentConfig cfg;
  const AgentFactory make_agent = [] { return std::make_unique<ModularAgent>(); };
  for (auto _ : state) {
    if (jobs == 0) {
      ModularAgent agent;
      benchmark::DoNotOptimize(run_batch(agent, nullptr, cfg, kEpisodes, 1));
    } else {
      benchmark::DoNotOptimize(run_batch_parallel(make_agent, AttackerFactory{}, cfg,
                                                  kEpisodes, 1,
                                                  /*with_reference=*/false, jobs));
    }
  }
  state.SetItemsProcessed(state.iterations() * kEpisodes);
}
BENCHMARK(BM_EpisodeBatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SacUpdate(benchmark::State& state) {
  const int obs_dim = static_cast<int>(state.range(0));
  SacConfig cfg;
  cfg.batch_size = 32;
  Rng rng(4);
  Sac sac(obs_dim, 2, cfg, rng);
  ReplayBuffer buf(4096, obs_dim, 2);
  std::vector<double> obs(static_cast<std::size_t>(obs_dim));
  for (int i = 0; i < 512; ++i) {
    for (auto& v : obs) v = rng.uniform(-1.0, 1.0);
    const double act[2] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    buf.add(obs, act, rng.uniform(), obs, false);
  }
  for (auto _ : state) {
    sac.update(buf, rng);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SacUpdate)->Arg(64)->Arg(267);

// ---- telemetry hot paths -------------------------------------------------
// The enabled/disabled pairs bound what instrumenting a call site costs. The
// disabled variants are the budget that matters: instrumentation stays
// compiled in everywhere, so its off-state cost is paid by every
// un-instrumented run.

void BM_TelemetryCounterEnabled(benchmark::State& state) {
  telemetry::set_metrics_enabled(true);
  telemetry::Counter c = telemetry::counter("bench.counter");
  for (auto _ : state) c.inc();
  telemetry::set_metrics_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterEnabled);

void BM_TelemetryCounterDisabled(benchmark::State& state) {
  telemetry::set_metrics_enabled(false);
  telemetry::Counter c = telemetry::counter("bench.counter");
  for (auto _ : state) c.inc();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterDisabled);

void BM_TelemetrySpanEnabled(benchmark::State& state) {
  telemetry::set_tracing_enabled(true);
  for (auto _ : state) {
    ADSEC_SPAN("bench.span");
  }
  telemetry::set_tracing_enabled(false);
  telemetry::clear_trace();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySpanEnabled);

void BM_TelemetrySpanDisabled(benchmark::State& state) {
  telemetry::set_tracing_enabled(false);
  for (auto _ : state) {
    ADSEC_SPAN("bench.span");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySpanDisabled);

// Manual ns/op measurement for the BENCH_micro.json artifact: a tight loop
// long enough to amortize the clock reads, reported per operation. Simpler
// and more portable than scraping google-benchmark's own reporter.
double measure_ns_per_op(const std::function<void()>& op) {
  constexpr int kWarmup = 1 << 16;
  constexpr int kIters = 1 << 22;  // ~4M ops per timed block
  for (int i = 0; i < kWarmup; ++i) op();
  double best = 1e300;  // best-of-3 filters scheduler noise
  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t t0 = telemetry::monotonic_ns();
    for (int i = 0; i < kIters; ++i) op();
    const std::uint64_t t1 = telemetry::monotonic_ns();
    best = std::min(best, static_cast<double>(t1 - t0) / kIters);
  }
  return best;
}

void write_overhead_table() {
  telemetry::Counter c = telemetry::counter("bench.overhead_counter");
  telemetry::Histogram h = telemetry::histogram(
      "bench.overhead_hist", {1, 2, 4, 8, 16, 32, 64});

  Table t({"op", "state", "ns_per_op"});
  auto row = [&t](const char* op, const char* on, double ns) {
    t.add_row({op, on, fmt(ns, 2)});
    std::printf("telemetry overhead: %-16s %-8s %6.2f ns/op\n", op, on, ns);
  };

  telemetry::set_metrics_enabled(false);
  telemetry::set_tracing_enabled(false);
  row("counter.inc", "disabled", measure_ns_per_op([&] { c.inc(); }));
  row("histogram.observe", "disabled", measure_ns_per_op([&] { h.observe(7.0); }));
  row("span", "disabled", measure_ns_per_op([] { ADSEC_SPAN("bench.overhead"); }));

  telemetry::set_metrics_enabled(true);
  row("counter.inc", "enabled", measure_ns_per_op([&] { c.inc(); }));
  row("histogram.observe", "enabled", measure_ns_per_op([&] { h.observe(7.0); }));
  telemetry::set_metrics_enabled(false);

  telemetry::set_tracing_enabled(true);
  row("span", "enabled", measure_ns_per_op([] { ADSEC_SPAN("bench.overhead"); }));
  telemetry::set_tracing_enabled(false);
  telemetry::clear_trace();

  bench::maybe_write_csv(t, "telemetry_overhead");
}

}  // namespace
}  // namespace adsec

// Custom main instead of BENCHMARK_MAIN(): same google-benchmark run, plus
// the telemetry-overhead table and the BENCH_micro.json summary.
int main(int argc, char** argv) {
  adsec::bench::bench_init("micro");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  adsec::write_overhead_table();
  return 0;
}
