// Extension: sensor fault injection (a DSN-flavoured dependability sweep).
//
// The end-to-end agent's only world model is its camera; this bench injects
// per-cell Gaussian noise and dropout into the semantic grid and measures
// nominal driving degradation. The modular pipeline, which drives off map +
// planner + odometry rather than the camera, rides along as the control.
#include "bench_common.hpp"

#include "core/experiment.hpp"

using namespace adsec;
using namespace adsec::bench;

int main() {
  bench_init("sensor_faults");
  set_log_level(LogLevel::Info);
  print_header("Camera fault injection: e2e agent dependability (extension)",
               "dependability sweep (not in paper)");
  const int episodes = eval_episodes(10);
  ExperimentConfig cfg = zoo().experiment();

  Table t({"fault", "level", "agent", "mean reward", "passed (mean)",
           "collision-free"});

  auto run_agent = [&](const std::string& fault, const std::string& level,
                       DrivingAgent& agent) {
    RunningStats reward, passed;
    int clean = 0;
    for (int k = 0; k < episodes; ++k) {
      const EpisodeMetrics m = run_episode(agent, nullptr, cfg,
                                           kEvalSeedBase + static_cast<std::uint64_t>(k));
      reward.add(m.nominal_reward);
      passed.add(m.passed_npcs);
      clean += m.collision ? 0 : 1;
    }
    t.add_row({fault, level, agent.name(), fmt(reward.mean(), 1),
               fmt(passed.mean(), 2),
               std::to_string(clean) + "/" + std::to_string(episodes)});
  };

  // Baseline (no faults).
  {
    auto e2e = zoo().make_e2e_agent();
    run_agent("none", "-", *e2e);
    auto modular = zoo().make_modular_agent();
    run_agent("none", "-", *modular);
  }

  for (double noise : {0.1, 0.3, 0.6}) {
    CameraConfig cam = zoo().camera();
    cam.cell_noise = noise;
    E2EAgent agent(zoo().driving_policy(), cam, 3, "e2e");
    run_agent("cell noise", fmt(noise, 1), agent);
  }
  for (double dropout : {0.1, 0.3, 0.6}) {
    CameraConfig cam = zoo().camera();
    cam.cell_dropout = dropout;
    E2EAgent agent(zoo().driving_policy(), cam, 3, "e2e");
    run_agent("cell dropout", fmt(dropout, 1), agent);
  }

  t.print();
  maybe_write_csv(t, "sensor_faults");
  std::printf("\nDropout deletes NPCs from the panorama — the policy overtakes\n"
              "blind; noise corrupts the free-space map. Either fault class\n"
              "degrades the end-to-end agent while the modular pipeline (which\n"
              "does not consume the camera) is untouched: the flip side of the\n"
              "architecture comparison in Fig. 5.\n");
  return 0;
}
