// Extension: stealth vs effectiveness frontier.
//
// The paper motivates the IMU attacker with covertness of the *sensor*
// installation; this bench measures covertness of the *injection* itself:
// how long each attacker runs before a residual monitor on the steering
// read-back (defense/detector.hpp) raises an alarm, vs how often it
// achieves the side collision. Attackers that lurk (inject only at
// critical moments) are detected later than an always-on injection of the
// same budget — the quantitative version of the paper's "remain undetected
// at all other times" design goal. Both the EWMA-envelope and CUSUM
// monitors are reported.
#include "bench_common.hpp"

#include "attack/scripted_attacker.hpp"
#include "common/angle.hpp"
#include "core/experiment.hpp"
#include "defense/detector.hpp"

using namespace adsec;
using namespace adsec::bench;

namespace {

// Replays one attacked episode while feeding both monitors; returns steps
// until each alarm (-1 = never) plus the episode outcome.
struct StealthResult {
  int ewma_alarm_step{-1};
  int cusum_alarm_step{-1};
  bool success{false};
};

StealthResult run_monitored(DrivingAgent& agent, Attacker& attacker,
                            const ExperimentConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  World world = make_scenario(cfg.scenario, rng);
  agent.reset(world);
  attacker.reset(world);
  AttackDetector ewma;
  CusumDetector cusum;

  StealthResult out;
  double prev_applied = world.ego().actuation().steer;
  while (!world.done()) {
    Action a = agent.decide(world);
    const double commanded = a.steer_variation;
    const double delta = attacker.decide(world);
    a.steer_variation = clamp(a.steer_variation + delta, -1.0, 1.0);
    world.step(a, delta);
    attacker.post_step(world);

    const double applied = world.ego().actuation().steer;
    ewma.update(commanded, applied, prev_applied, world.ego().params().alpha);
    cusum.update(commanded, applied, prev_applied, world.ego().params().alpha);
    prev_applied = applied;
    if (out.ewma_alarm_step < 0 && ewma.attack_detected()) {
      out.ewma_alarm_step = world.step_count();
    }
    if (out.cusum_alarm_step < 0 && cusum.attack_detected()) {
      out.cusum_alarm_step = world.step_count();
    }
  }
  out.success =
      world.collided() && world.collision()->type == CollisionType::Side;
  return out;
}

}  // namespace

int main() {
  bench_init("stealth");
  set_log_level(LogLevel::Warn);
  print_header("Stealth vs effectiveness of the attackers (extension)",
               "Sec. IV design goal: 'lurk until a safety-critical moment'");
  const int episodes = eval_episodes(10);
  ExperimentConfig cfg = zoo().experiment();
  auto victim = zoo().make_modular_agent();

  Table t({"attacker", "budget", "success rate", "mean steps to EWMA alarm",
           "mean steps to CUSUM alarm", "undetected episodes"});

  const double budget = 1.0;
  ScriptedAttacker oracle(budget, cfg.adv_reward);
  NoiseAttacker noise(budget);
  auto camera = zoo().make_camera_attacker(budget, /*vs_modular=*/true);
  auto imu = zoo().make_imu_attacker(budget);

  for (Attacker* att :
       {static_cast<Attacker*>(&oracle), static_cast<Attacker*>(&noise),
        static_cast<Attacker*>(camera.get()), static_cast<Attacker*>(imu.get())}) {
    RunningStats ewma_steps, cusum_steps;
    int undetected = 0, successes = 0;
    for (int k = 0; k < episodes; ++k) {
      const StealthResult r = run_monitored(
          *victim, *att, cfg, kEvalSeedBase + static_cast<std::uint64_t>(k));
      successes += r.success ? 1 : 0;
      if (r.ewma_alarm_step >= 0) ewma_steps.add(r.ewma_alarm_step);
      if (r.cusum_alarm_step >= 0) cusum_steps.add(r.cusum_alarm_step);
      if (r.ewma_alarm_step < 0 && r.cusum_alarm_step < 0) ++undetected;
    }
    t.add_row({att->name(), fmt(budget, 1),
               fmt_pct(static_cast<double>(successes) / episodes),
               ewma_steps.count() > 0 ? fmt(ewma_steps.mean(), 1) : "never",
               cusum_steps.count() > 0 ? fmt(cusum_steps.mean(), 1) : "never",
               std::to_string(undetected) + "/" + std::to_string(episodes)});
  }

  t.print();
  maybe_write_csv(t, "stealth");
  std::printf(
      "\nGated attackers stay silent (no alarm) until their strike — the alarm\n"
      "fires only steps before impact. The untimed noise attacker trips the\n"
      "monitors almost immediately AND achieves nothing: stealth and\n"
      "effectiveness are aligned here, both favouring critical-moment gating.\n");
  return 0;
}
