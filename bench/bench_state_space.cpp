// Extension: state-space (FGSM observation) attack vs the paper's
// action-space attack on the same end-to-end victim.
//
// The paper's background (Sec. II-B) separates attacks on agent *inputs*
// from attacks on agent *outputs*; this bench puts numbers on the contrast
// in our substrate. The state-space attacker is white-box (it
// differentiates the victim network) yet acts only through the victim's own
// bounded policy output, while the action-space attacker is black-box but
// adds its perturbation after the policy — directly on the actuation path.
#include "bench_common.hpp"

#include "attack/state_space.hpp"
#include "core/experiment.hpp"

using namespace adsec;
using namespace adsec::bench;

int main() {
  bench_init("state_space");
  set_log_level(LogLevel::Info);
  print_header("State-space (FGSM) vs action-space attack (extension)",
               "Sec. II-B attack taxonomy");
  const int episodes = eval_episodes(15);
  ExperimentConfig cfg = zoo().experiment();

  Table t({"attack", "budget", "success rate", "mean nominal reward",
           "collisions (any)"});

  // Action-space rows: the learned camera attacker at increasing budgets.
  auto victim = zoo().make_e2e_agent();
  for (double budget : {0.5, 1.0}) {
    auto att = zoo().make_camera_attacker(budget);
    const auto ms = run_batch(*victim, att.get(), cfg, episodes, kEvalSeedBase);
    RunningStats nom;
    int any = 0;
    for (const auto& m : ms) {
      nom.add(m.nominal_reward);
      any += m.collision ? 1 : 0;
    }
    t.add_row({"action-space (black-box)", fmt(budget, 2), fmt_pct(success_rate(ms)),
               fmt(nom.mean(), 1), std::to_string(any)});
  }

  // State-space rows: FGSM on the observation at increasing eps.
  for (double eps : {0.1, 0.3, 0.6}) {
    FgsmAttackedE2EAgent attacked(zoo().driving_policy(), eps, zoo().camera(), 3,
                                  cfg.adv_reward);
    const auto ms = run_batch(attacked, nullptr, cfg, episodes, kEvalSeedBase);
    RunningStats nom;
    int any = 0;
    for (const auto& m : ms) {
      nom.add(m.nominal_reward);
      any += m.collision ? 1 : 0;
    }
    t.add_row({"state-space FGSM (white-box)", fmt(eps, 2), fmt_pct(success_rate(ms)),
               fmt(nom.mean(), 1), std::to_string(any)});
  }

  t.print();
  maybe_write_csv(t, "state_vs_action");
  std::printf(
      "\nReading the table: with white-box gradients, even a tiny observation\n"
      "budget devastates the undefended policy — the classic adversarial-\n"
      "examples result. The action-space attack needs a much larger (actuation\n"
      "scale) budget, but requires NO access to the model or its inputs: only\n"
      "the wire between controller and actuator. The paper's threat model\n"
      "trades per-unit effectiveness for a drastically weaker access\n"
      "assumption — and unlike FGSM it cannot be trained away by input-space\n"
      "adversarial hardening.\n");
  return 0;
}
