// Ablations of the attack design choices called out in DESIGN.md. These use
// the scripted oracle attacker (attack/scripted_attacker.hpp) so the
// comparisons isolate the *mechanism* from DRL training noise:
//
//   1. Critical-moment gating I(omega): gated attack vs always-on injection.
//   2. Victim actuation retain rate alpha (Eq. 1): resilience sensitivity.
//   3. Local feedback control: modular agent vs an open-loop variant that
//      replays the planner heading without PID correction.
#include "bench_common.hpp"

#include "common/angle.hpp"

#include "agents/modular_agent.hpp"
#include "attack/scripted_attacker.hpp"
#include "core/experiment.hpp"

using namespace adsec;
using namespace adsec::bench;

namespace {

// Always-on variant of the oracle: injects toward the target NPC at every
// step, critical moment or not (I(omega) ablated away).
class AlwaysOnAttacker : public Attacker {
 public:
  explicit AlwaysOnAttacker(double budget) : budget_(budget) {}
  void reset(const World&) override {}
  double decide(const World& world) override {
    const int target = world.target_npc_index();
    if (target < 0) return 0.0;
    const auto& npc = world.npcs()[static_cast<std::size_t>(target)];
    const Vec2 rel = npc.vehicle().state().position - world.ego().state().position;
    const double bearing = angle_diff(rel.heading(), world.ego().state().heading);
    return bearing >= 0.0 ? budget_ : -budget_;
  }
  std::string name() const override { return "always-on"; }
  double budget() const override { return budget_; }

 private:
  double budget_;
};

// Constant small steering bias — the kind of persistent fault/attack the
// lateral feedback loop is supposed to rectify.
class ConstantBiasAttacker : public Attacker {
 public:
  explicit ConstantBiasAttacker(double bias) : bias_(bias) {}
  void reset(const World&) override {}
  double decide(const World&) override { return bias_; }
  std::string name() const override { return "constant-bias"; }
  double budget() const override { return bias_; }

 private:
  double bias_;
};

// Open-loop modular agent: uses the same planner but commands a fixed
// feed-forward steering variation of zero (no PID rectification), keeping
// only speed control. Isolates the contribution of lateral feedback.
class OpenLoopAgent : public DrivingAgent {
 public:
  void reset(const World& world) override { inner_.reset(world); }
  Action decide(const World& world) override {
    Action a = inner_.decide(world);
    a.steer_variation = 0.0;  // ablate the lateral feedback path
    return a;
  }
  std::string name() const override { return "open-loop"; }

 private:
  ModularAgent inner_;
};

void gating_ablation(int episodes) {
  std::printf("-- Ablation 1: critical-moment gating I(omega) --\n");
  ExperimentConfig cfg = zoo().experiment();
  ModularAgent agent;
  Table t({"attacker", "budget", "success rate", "mean adv reward",
           "mean injected |delta| total"});
  for (double budget : {0.6, 1.0}) {
    ScriptedAttacker gated(budget, cfg.adv_reward);
    AlwaysOnAttacker always(budget);
    NoiseAttacker noise(budget);
    for (Attacker* att : {static_cast<Attacker*>(&gated),
                          static_cast<Attacker*>(&always),
                          static_cast<Attacker*>(&noise)}) {
      const auto ms = run_batch(agent, att, cfg, episodes, kEvalSeedBase);
      RunningStats adv, inj;
      for (const auto& m : ms) {
        adv.add(m.adv_reward);
        inj.add(m.total_injected);
      }
      t.add_row({att->name(), fmt(budget, 1), fmt_pct(success_rate(ms)),
                 fmt(adv.mean(), 2), fmt(inj.mean(), 1)});
    }
  }
  t.print();
  std::printf("(gating should match or beat always-on success while injecting "
              "far less — the 'lurk' behaviour the maneuver penalty teaches; "
              "bounded noise shows untimed perturbation achieves nothing: "
              "Eq. 1's low-pass averages it away)\n\n");
  maybe_write_csv(t, "ablation_gating");
}

void alpha_ablation(int episodes) {
  std::printf("-- Ablation 2: victim actuation retain rate alpha (Eq. 1) --\n");
  // Fixed oracle budget; only the vehicle's actuator low-pass varies. A
  // slower actuator (higher alpha) lets the attacker's persistent bias
  // accumulate while shrinking the PID's per-step rectification authority.
  Table t({"alpha", "success rate", "mean deviation RMSE"});
  for (double alpha : {0.5, 0.7, 0.8}) {
    ExperimentConfig cfg = zoo().experiment();
    cfg.scenario.vehicle.alpha = alpha;
    ModularAgent agent;
    ScriptedAttacker att(0.8);
    RunningStats dev;
    std::vector<EpisodeMetrics> ms;
    for (int k = 0; k < episodes; ++k) {
      const EpisodeMetrics m = evaluate_with_reference(
          agent, &att, cfg, kEvalSeedBase + static_cast<std::uint64_t>(k));
      ms.push_back(m);
      dev.add(std::max(0.0, m.deviation_rmse));
    }
    t.add_row({fmt(alpha, 1), fmt_pct(success_rate(ms)), fmt(dev.mean(), 3)});
  }
  t.print();
  std::printf("(fixed budget 0.8; a slower actuator lets the attacker's "
              "persistent bias accumulate faster than the PID can rectify)\n\n");
  maybe_write_csv(t, "ablation_alpha");
}

void feedback_ablation(int episodes) {
  std::printf("-- Ablation 3: lateral feedback control (PID) --\n");
  ExperimentConfig cfg = zoo().experiment();
  Table t({"agent", "steering bias", "mean steps", "mean passed npcs",
           "collision-free episodes"});
  ModularAgent closed;
  OpenLoopAgent open;
  for (double bias : {0.0, 0.1}) {
    ConstantBiasAttacker att(bias);
    for (DrivingAgent* agent : {static_cast<DrivingAgent*>(&closed),
                                static_cast<DrivingAgent*>(&open)}) {
      RunningStats steps, passed;
      int clean = 0;
      for (int k = 0; k < episodes; ++k) {
        const EpisodeMetrics m =
            run_episode(*agent, bias > 0.0 ? &att : nullptr, cfg,
                        kEvalSeedBase + static_cast<std::uint64_t>(k));
        steps.add(m.steps);
        passed.add(m.passed_npcs);
        clean += m.collision ? 0 : 1;
      }
      t.add_row({agent->name(), fmt(bias, 1), fmt(steps.mean(), 1),
                 fmt(passed.mean(), 2),
                 std::to_string(clean) + "/" + std::to_string(episodes)});
    }
  }
  t.print();
  std::printf("(open loop cannot overtake at all, and a small persistent bias "
              "that the PID simply absorbs sends it off the road — the "
              "rectification loop behind the modular pipeline's resilience)\n\n");
  maybe_write_csv(t, "ablation_feedback");
}

void attack_surface_ablation(int episodes) {
  std::printf("-- Ablation 4: attack surface (steering-only vs + thrust) --\n");
  // The paper's threat model leaves the thrust unit untouched so the victim
  // can brake out of trouble (Sec. IV-A). Compromising thrust as well drops
  // the budget needed for a side collision.
  ExperimentConfig cfg = zoo().experiment();
  ModularAgent agent;
  Table t({"attack surface", "steer budget", "success rate"});
  for (double budget : {0.5, 0.7, 0.9}) {
    ScriptedAttacker steer_only(budget, cfg.adv_reward);
    FullActuationOracle full(budget, 1.0, cfg.adv_reward);
    for (Attacker* att : {static_cast<Attacker*>(&steer_only),
                          static_cast<Attacker*>(&full)}) {
      const auto ms = run_batch(agent, att, cfg, episodes, kEvalSeedBase);
      t.add_row({att->name(), fmt(budget, 1), fmt_pct(success_rate(ms))});
    }
  }
  t.print();
  std::printf("(denying the victim its braking escape lowers the steering "
              "budget an attack needs — why the paper's steering-only model "
              "is the harder, more interesting setting)\n\n");
  maybe_write_csv(t, "ablation_surface");
}

}  // namespace

int main() {
  bench_init("ablation");
  set_log_level(LogLevel::Warn);
  print_header("Design-choice ablations (oracle attacker)", "DESIGN.md ablation index");
  const int episodes = eval_episodes(10);
  gating_ablation(episodes);
  alpha_ablation(episodes);
  feedback_ablation(episodes);
  attack_surface_ablation(episodes);
  return 0;
}
