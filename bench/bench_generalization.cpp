// Extension: generalization across scenario variants.
//
// The paper notes DRL-based driving "still has several challenges such as
// lack of generalizability" (Sec. II-A). Both agents and the attack were
// built/trained on the "paper" scenario; this bench replays them on unseen
// variants — denser and sparser traffic, a two-lane road, S-curves, faster
// NPCs — and reports how nominal driving and attack effectiveness transfer.
#include "bench_common.hpp"

#include "attack/scripted_attacker.hpp"
#include "core/experiment.hpp"

using namespace adsec;
using namespace adsec::bench;

int main() {
  bench_init("generalization");
  set_log_level(LogLevel::Info);
  print_header("Generalization across scenario variants (extension)",
               "Sec. II-A generalizability discussion");
  const int episodes = eval_episodes(10);

  Table nominal({"scenario", "agent", "passed/total", "collision-free",
                 "mean reward"});
  Table attacked({"scenario", "agent", "oracle eps=1 success rate"});

  for (const std::string& preset : scenario_preset_names()) {
    ExperimentConfig cfg = zoo().experiment();
    cfg.scenario = scenario_preset(preset);

    auto modular = zoo().make_modular_agent();
    auto e2e = zoo().make_e2e_agent();
    struct Row {
      DrivingAgent* agent;
    } rows[] = {{modular.get()}, {e2e.get()}};

    for (const Row& row : rows) {
      RunningStats passed, reward;
      int clean = 0;
      for (int k = 0; k < episodes; ++k) {
        const EpisodeMetrics m = run_episode(
            *row.agent, nullptr, cfg, kEvalSeedBase + static_cast<std::uint64_t>(k));
        passed.add(m.passed_npcs);
        reward.add(m.nominal_reward);
        clean += m.collision ? 0 : 1;
      }
      nominal.add_row({preset, row.agent->name(),
                       fmt(passed.mean(), 2) + "/" +
                           std::to_string(cfg.scenario.num_npcs),
                       std::to_string(clean) + "/" + std::to_string(episodes),
                       fmt(reward.mean(), 1)});

      ScriptedAttacker oracle(1.0, cfg.adv_reward);
      const auto ms = run_batch(*row.agent, &oracle, cfg, episodes, kEvalSeedBase);
      attacked.add_row({preset, row.agent->name(), fmt_pct(success_rate(ms))});
    }
  }

  std::printf("nominal driving on unseen scenario variants:\n");
  nominal.print();
  maybe_write_csv(nominal, "generalization_nominal");
  std::printf("\nfull-budget oracle attack on the same variants:\n");
  attacked.print();
  maybe_write_csv(attacked, "generalization_attacked");
  std::printf(
      "\nExpected pattern: the modular pipeline (planner + PID, no learned\n"
      "component tied to the training distribution) transfers across variants;\n"
      "the end-to-end policy degrades away from its training scenario — the\n"
      "generalizability gap the paper cites. The attack itself transfers\n"
      "wherever overtaking happens, since its lever is the shared geometry of\n"
      "a side collision.\n");
  return 0;
}
