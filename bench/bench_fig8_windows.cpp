// Regenerates Fig. 8: attack success rate per attack-effort window (width
// 0.2, from 0.0 to 0.8+) for the nominal end-to-end agent and the four
// enhanced agents, under camera-based attacks.
//
// Paper shape targets: fine-tuned agents show nonzero success rates already
// at small efforts; PNN agents have the lowest success rates in every
// window.
//
// Episodes run on the parallel rollout runtime: all policies are resolved
// serially up front, then each 13-budget sweep fans its batches out over
// bench_jobs() workers with results bit-identical to the serial sweep.
#include "bench_common.hpp"

#include "core/experiment.hpp"
#include "defense/pnn_agent.hpp"

using namespace adsec;
using namespace adsec::bench;

namespace {

// An agent recipe per budget level (the PNN switcher is primed with the
// sweep's budget; the other agents ignore it).
using AgentForBudget = std::function<AgentFactory(double)>;

AgentForBudget e2e_for(const GaussianPolicy& policy, const std::string& name) {
  return [&policy, name](double) {
    return AgentFactory([&policy, name] {
      return std::make_unique<E2EAgent>(policy, zoo().camera(), zoo().frame_stack(),
                                        name);
    });
  };
}

AgentForBudget pnn_for(const GaussianPolicy& base, const GaussianPolicy& column,
                       double sigma) {
  return [&base, &column, sigma](double budget) {
    return AgentFactory([&base, &column, sigma, budget] {
      auto agent = std::make_unique<PnnSwitchedAgent>(base, column, sigma,
                                                      zoo().camera(),
                                                      zoo().frame_stack());
      agent->set_attack_budget_estimate(budget);
      return agent;
    });
  };
}

EffortWindowStats sweep(const AgentForBudget& agent_for_budget,
                        const GaussianPolicy& attack_policy, int rounds) {
  ExperimentConfig cfg = zoo().experiment();
  std::vector<double> efforts;
  std::vector<bool> successes;
  for (int bi = 0; bi <= 12; ++bi) {
    const double budget = bi * 0.1;
    AttackerFactory make_attacker;
    if (budget > 0.0) {
      make_attacker = [&attack_policy, budget] {
        return std::make_unique<LearnedCameraAttacker>(
            attack_policy, budget, zoo().camera(), zoo().frame_stack());
      };
    }
    // Same seeds as the serial sweep: kEvalSeedBase + 1000*bi + r. Lane
    // batching (ADSEC_LANES) is bit-neutral, like ADSEC_JOBS.
    ParallelEvalOptions run_opts;
    run_opts.jobs = bench_jobs();
    run_opts.batch_lanes = bench_lanes();
    const auto ms = run_batch_parallel(
        agent_for_budget(budget), make_attacker, cfg, rounds,
        kEvalSeedBase + 1000 * static_cast<std::uint64_t>(bi), run_opts);
    for (const EpisodeMetrics& m : ms) {
      efforts.push_back(m.attack_effort);
      successes.push_back(m.side_collision);
    }
  }
  return success_by_effort_window(efforts, successes, 0.2, 0.8);
}

}  // namespace

int main() {
  bench_init("fig8_windows");
  set_log_level(LogLevel::Info);
  print_header("Attack success rate per attack-effort window",
               "Fig. 8, Sec. VI-C");
  const int rounds = eval_episodes(10);

  Table t({"agent", "[0,.2)", "[.2,.4)", "[.4,.6)", "[.6,.8)", ".8+"});
  auto add = [&](const std::string& name, const EffortWindowStats& s) {
    std::vector<std::string> row{name};
    for (std::size_t b = 0; b < s.success_rate.size(); ++b) {
      row.push_back(fmt_pct(s.success_rate[b], 0) + " (" +
                    std::to_string(s.episodes[b]) + ")");
    }
    t.add_row(std::move(row));
  };

  // Resolve every policy serially (training on cache miss) before the
  // parallel sweeps start; worker factories only copy them.
  const GaussianPolicy attack_policy = zoo().camera_attacker_vs_e2e();
  const GaussianPolicy pi_ori = zoo().driving_policy();
  const GaussianPolicy ft11 = zoo().finetuned(1.0 / 11.0);
  const GaussianPolicy ft2 = zoo().finetuned(0.5);
  const GaussianPolicy pnn_col = zoo().pnn_column();

  add("pi_ori", sweep(e2e_for(pi_ori, "e2e"), attack_policy, rounds));
  add("pi_adv,rho=1/11",
      sweep(e2e_for(ft11, "e2e-adv,rho=1/11"), attack_policy, rounds));
  add("pi_adv,rho=1/2",
      sweep(e2e_for(ft2, "e2e-adv,rho=1/2"), attack_policy, rounds));
  add("pi_pnn,sigma=0.2", sweep(pnn_for(pi_ori, pnn_col, 0.2), attack_policy, rounds));
  add("pi_pnn,sigma=0.4", sweep(pnn_for(pi_ori, pnn_col, 0.4), attack_policy, rounds));

  std::printf("success rate (episodes in window):\n");
  t.print();
  maybe_write_csv(t, "fig8");
  return 0;
}
