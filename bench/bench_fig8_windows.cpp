// Regenerates Fig. 8: attack success rate per attack-effort window (width
// 0.2, from 0.0 to 0.8+) for the nominal end-to-end agent and the four
// enhanced agents, under camera-based attacks.
//
// Paper shape targets: fine-tuned agents show nonzero success rates already
// at small efforts; PNN agents have the lowest success rates in every
// window.
#include "bench_common.hpp"

#include "core/experiment.hpp"
#include "defense/pnn_agent.hpp"

using namespace adsec;
using namespace adsec::bench;

namespace {

EffortWindowStats sweep(DrivingAgent& agent, PnnSwitchedAgent* pnn_switcher,
                        int rounds) {
  ExperimentConfig cfg = zoo().experiment();
  std::vector<double> efforts;
  std::vector<bool> successes;
  for (int bi = 0; bi <= 12; ++bi) {
    const double budget = bi * 0.1;
    auto attacker = zoo().make_camera_attacker(budget);
    if (pnn_switcher != nullptr) pnn_switcher->set_attack_budget_estimate(budget);
    for (int r = 0; r < rounds; ++r) {
      const std::uint64_t seed = kEvalSeedBase + 1000 * static_cast<std::uint64_t>(bi) +
                                 static_cast<std::uint64_t>(r);
      const EpisodeMetrics m =
          run_episode(agent, budget > 0.0 ? attacker.get() : nullptr, cfg, seed);
      efforts.push_back(m.attack_effort);
      successes.push_back(m.side_collision);
    }
  }
  return success_by_effort_window(efforts, successes, 0.2, 0.8);
}

}  // namespace

int main() {
  set_log_level(LogLevel::Info);
  print_header("Attack success rate per attack-effort window",
               "Fig. 8, Sec. VI-C");
  const int rounds = eval_episodes(10);

  Table t({"agent", "[0,.2)", "[.2,.4)", "[.4,.6)", "[.6,.8)", ".8+"});
  auto add = [&](const std::string& name, const EffortWindowStats& s) {
    std::vector<std::string> row{name};
    for (std::size_t b = 0; b < s.success_rate.size(); ++b) {
      row.push_back(fmt_pct(s.success_rate[b], 0) + " (" +
                    std::to_string(s.episodes[b]) + ")");
    }
    t.add_row(std::move(row));
  };

  auto ori = zoo().make_e2e_agent();
  add("pi_ori", sweep(*ori, nullptr, rounds));
  auto ft11 = zoo().make_finetuned_agent(1.0 / 11.0);
  add("pi_adv,rho=1/11", sweep(*ft11, nullptr, rounds));
  auto ft2 = zoo().make_finetuned_agent(0.5);
  add("pi_adv,rho=1/2", sweep(*ft2, nullptr, rounds));
  auto pnn02 = zoo().make_pnn_agent(0.2);
  add("pi_pnn,sigma=0.2", sweep(*pnn02, pnn02.get(), rounds));
  auto pnn04 = zoo().make_pnn_agent(0.4);
  add("pi_pnn,sigma=0.4", sweep(*pnn04, pnn04.get(), rounds));

  std::printf("success rate (episodes in window):\n");
  t.print();
  maybe_write_csv(t, "fig8");
  return 0;
}
