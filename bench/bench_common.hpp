// Shared scaffolding for the figure-regeneration benches.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/zoo.hpp"

namespace adsec::bench {

// Every bench shares one zoo: policies train on first use (minutes on one
// core at full scale) and load from the cache afterwards.
inline PolicyZoo& zoo() {
  static PolicyZoo z;
  return z;
}

// Evaluation episode seeds are disjoint from training seeds.
inline constexpr std::uint64_t kEvalSeedBase = 700000;

// Optional CSV mirror of each printed table.
inline void maybe_write_csv(const Table& table, const std::string& name) {
  const char* dir = std::getenv("ADSEC_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  table.write_csv(std::string(dir) + "/" + name + ".csv");
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n(paper: %s)\n\n", title.c_str(), paper_ref.c_str());
}

}  // namespace adsec::bench
