// Shared scaffolding for the figure-regeneration benches.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/zoo.hpp"
#include "runtime/parallel_eval.hpp"

namespace adsec::bench {

// Every bench shares one zoo: policies train on first use (minutes on one
// core at full scale) and load from the cache afterwards.
inline PolicyZoo& zoo() {
  static PolicyZoo z;
  return z;
}

// Evaluation episode seeds are disjoint from training seeds.
inline constexpr std::uint64_t kEvalSeedBase = 700000;

// Worker count for parallel episode batches: ADSEC_JOBS overrides, default
// hardware_concurrency. Parallel batches are bit-identical to serial ones
// (see runtime/parallel_eval.hpp), so this only changes wall-clock time.
inline int bench_jobs() {
  const char* env = std::getenv("ADSEC_JOBS");
  if (env != nullptr && *env != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return hardware_jobs();
}

// Optional CSV mirror of each printed table.
inline void maybe_write_csv(const Table& table, const std::string& name) {
  const char* dir = std::getenv("ADSEC_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  table.write_csv(std::string(dir) + "/" + name + ".csv");
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n(paper: %s)\n\n", title.c_str(), paper_ref.c_str());
}

}  // namespace adsec::bench
