// Shared scaffolding for the figure-regeneration benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/zoo.hpp"
#include "nn/simd.hpp"
#include "runtime/parallel_eval.hpp"
#include "telemetry/events.hpp"

namespace adsec::bench {

// Every bench shares one zoo: policies train on first use (minutes on one
// core at full scale) and load from the cache afterwards.
inline PolicyZoo& zoo() {
  static PolicyZoo z;
  return z;
}

// Evaluation episode seeds are disjoint from training seeds.
inline constexpr std::uint64_t kEvalSeedBase = 700000;

// Worker count for parallel episode batches: ADSEC_JOBS overrides, default
// hardware_concurrency. Parallel batches are bit-identical to serial ones
// (see runtime/parallel_eval.hpp), so this only changes wall-clock time.
inline int bench_jobs() {
  const char* env = std::getenv("ADSEC_JOBS");
  if (env != nullptr && *env != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return hardware_jobs();
}

// Episode lanes per worker for cross-episode batched inference:
// ADSEC_LANES overrides, default 8. Lane-batched runs are bit-identical to
// serial ones for any lane count (see runtime/lane_scheduler.hpp), so like
// ADSEC_JOBS this only changes wall-clock time.
inline int bench_lanes() {
  const char* env = std::getenv("ADSEC_LANES");
  if (env != nullptr && *env != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

// Machine-readable mirror of everything a bench binary prints. Each bench
// calls bench_init("<name>") once at the top of main; every table that goes
// through maybe_write_csv is also recorded here, and at process exit (or an
// explicit write()) the collected tables land in BENCH_<name>.json — in
// $ADSEC_BENCH_JSON_DIR when set, else the working directory. Format:
//   {"bench": "...", "tables": [{"name", "headers": [...], "rows": [[...]]}]}
class BenchSummary {
 public:
  ~BenchSummary() { write(); }

  void set_name(std::string name) {
    std::lock_guard<std::mutex> lock(mutex_);
    name_ = std::move(name);
  }

  void add_table(const Table& table, const std::string& table_name) {
    std::lock_guard<std::mutex> lock(mutex_);
    tables_.push_back({table_name, table.headers(), table.row_data()});
  }

  // Write BENCH_<name>.json (idempotent: the recorded tables are consumed).
  // A bench that never called bench_init writes nothing.
  void write() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (name_.empty() || tables_.empty()) return;
    std::string json = "{\n  \"bench\": ";
    json += telemetry::json_quote(name_);
    // The active SIMD dispatch tier, so bench_compare.py can refuse to
    // diff timings taken on different kernel tiers (scalar vs avx2).
    json += ",\n  \"simd_tier\": ";
    json += telemetry::json_quote(simd::tier_name(simd::active_tier()));
    json += ",\n  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const Entry& e = tables_[t];
      json += t == 0 ? "\n" : ",\n";
      json += "    {\"name\": " + telemetry::json_quote(e.name);
      json += ", \"headers\": [";
      for (std::size_t i = 0; i < e.headers.size(); ++i) {
        if (i != 0) json += ", ";
        json += telemetry::json_quote(e.headers[i]);
      }
      json += "], \"rows\": [";
      for (std::size_t r = 0; r < e.rows.size(); ++r) {
        json += r == 0 ? "\n      [" : ",\n      [";
        for (std::size_t c = 0; c < e.rows[r].size(); ++c) {
          if (c != 0) json += ", ";
          json += telemetry::json_quote(e.rows[r][c]);
        }
        json += "]";
      }
      json += "]}";
    }
    json += "\n  ]\n}\n";

    const char* dir = std::getenv("ADSEC_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr && *dir != '\0')
                                 ? std::string(dir) + "/BENCH_" + name_ + ".json"
                                 : "BENCH_" + name_ + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    }
    tables_.clear();
  }

 private:
  struct Entry {
    std::string name;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  std::mutex mutex_;
  std::string name_;
  std::vector<Entry> tables_;
};

inline BenchSummary& summary() {
  static BenchSummary s;
  return s;
}

// First line of every bench main: names the BENCH_<name>.json artifact.
inline void bench_init(const std::string& name) { summary().set_name(name); }

// Mirror of each printed table: always recorded into the BENCH_<name>.json
// summary; additionally written as CSV when ADSEC_CSV_DIR is set.
inline void maybe_write_csv(const Table& table, const std::string& name) {
  summary().add_table(table, name);
  const char* dir = std::getenv("ADSEC_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  table.write_csv(std::string(dir) + "/" + name + ".csv");
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n(paper: %s)\n\n", title.c_str(), paper_ref.c_str());
}

}  // namespace adsec::bench
