// The paper's headline attack: a DRL-trained, camera-based adversarial
// policy causes a side collision of the end-to-end driving agent during an
// overtake. Prints a step-by-step timeline of the attack phases of Fig. 3
// (pre-attack lurking -> critical moment -> collision).
//
// Uses the policy zoo: the first run trains pi_ori and the attacker (several
// minutes on one core); afterwards they load from zoo/.
//
//   ./camera_attack_demo [budget]
#include <cstdio>
#include <cstdlib>

#include "attack/adv_reward.hpp"
#include "common/angle.hpp"
#include "core/zoo.hpp"

using namespace adsec;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("== DRL camera-based action-space attack (budget %.2f) ==\n\n", budget);

  PolicyZoo zoo;
  auto victim = zoo.make_e2e_agent();
  auto attacker = zoo.make_camera_attacker(budget);
  const ExperimentConfig config = zoo.experiment();

  // Manual rollout so we can narrate the phases.
  Rng rng(12345);
  World world = make_scenario(config.scenario, rng);
  victim->reset(world);
  attacker->reset(world);

  bool was_critical = false;
  std::printf("t(s)   ego s(m)  lane-off(m)  delta   phase\n");
  while (!world.done()) {
    Action a = victim->decide(world);
    const double delta = attacker->decide(world);
    const int target = world.target_npc_index();
    const bool critical = critical_moment(world, target, config.adv_reward.beta);

    a.steer_variation = clamp(a.steer_variation + delta, -1.0, 1.0);
    world.step(a, delta);
    attacker->post_step(world);

    if (critical != was_critical || world.step_count() % 20 == 0 || world.done()) {
      std::printf("%5.1f  %8.1f  %10.2f  %6.2f  %s\n", world.time(),
                  world.ego_frenet().s, world.ego_frenet().d, delta,
                  critical ? "CRITICAL (attacking)" : "lurking");
    }
    was_critical = critical;
  }

  std::printf("\noutcome: ");
  if (world.collided()) {
    std::printf("%s collision with NPC %d at t = %.1f s\n",
                to_string(world.collision()->type), world.collision()->npc_index,
                world.collision()->step * world.config().dt);
    if (world.collision()->type == CollisionType::Side) {
      std::printf("the attacker achieved its objective: a side collision during "
                  "the overtake.\n");
    }
  } else {
    std::printf("no collision — try a larger budget (this was %.2f).\n", budget);
  }
  return 0;
}
