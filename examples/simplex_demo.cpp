// The full Simplex loop in one episode: the detector watches the steering
// read-back, the switcher starts on pi_ori, and when the camera attacker
// begins injecting, the agent hot-swaps to the adversarially hardened PNN
// column mid-drive. Prints the control-cycle timeline of the hand-over.
//
// Uses the policy zoo (pi_ori, pnn_column, camera attacker).
//
//   ./simplex_demo [budget]
#include <cstdio>
#include <cstdlib>

#include "common/angle.hpp"
#include "core/zoo.hpp"
#include "defense/simplex_agent.hpp"

using namespace adsec;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 0.75;
  std::printf("== detector-driven Simplex hand-over (attack budget %.2f) ==\n\n",
              budget);

  PolicyZoo zoo;
  DetectorSwitchedAgent agent(zoo.driving_policy(), zoo.pnn_column(), /*sigma=*/0.2,
                              DetectorConfig{}, zoo.camera(), 3);
  auto attacker = zoo.make_camera_attacker(budget);
  const ExperimentConfig config = zoo.experiment();

  Rng rng(31337);
  World world = make_scenario(config.scenario, rng);
  agent.reset(world);
  attacker->reset(world);

  bool was_adversarial = false;
  bool announced_alarm = false;
  std::printf("t(s)   delta   budget-estimate  column\n");
  while (!world.done()) {
    Action a = agent.decide(world);
    const double delta = attacker->decide(world);
    a.steer_variation = clamp(a.steer_variation + delta, -1.0, 1.0);
    world.step(a, delta);
    attacker->post_step(world);

    const bool adversarial = agent.using_adversarial_column();
    if (adversarial != was_adversarial || world.step_count() % 25 == 0 ||
        world.done()) {
      std::printf("%5.1f  %6.3f  %15.3f  %s%s\n", world.time(), delta,
                  agent.detector().budget_estimate(),
                  adversarial ? "PNN (hardened)" : "pi_ori",
                  adversarial != was_adversarial ? "   << SWITCH" : "");
    }
    if (!announced_alarm && agent.detector().attack_detected()) {
      std::printf("       --- detector alarm at t = %.1f s ---\n", world.time());
      announced_alarm = true;
    }
    was_adversarial = adversarial;
  }

  std::printf("\noutcome: %s after %d steps, %d/%d NPCs passed\n",
              world.collided() ? to_string(world.collision()->type) : "clean finish",
              world.step_count(), world.passed_npcs(),
              static_cast<int>(world.npcs().size()));
  return 0;
}
