// Records a full attacked episode to CSV for offline plotting and renders a
// live ASCII bird's-eye view of the overtake + attack in the terminal.
// Self-contained (oracle attacker, no trained policies required).
//
//   ./trace_episode [budget] [out.csv]
#include <cstdio>
#include <cstdlib>

#include "agents/modular_agent.hpp"
#include "attack/scripted_attacker.hpp"
#include "common/angle.hpp"
#include "core/trace.hpp"
#include "sim/scenario.hpp"

using namespace adsec;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 1.0;
  const std::string csv_path = argc > 2 ? argv[2] : "episode_trace.csv";

  ScenarioConfig scenario;
  Rng rng(2024);
  World world = make_scenario(scenario, rng);
  ModularAgent agent;
  ScriptedAttacker attacker(budget);
  AdvRewardConfig adv;
  agent.reset(world);
  attacker.reset(world);

  EpisodeTrace trace;
  std::printf("== tracing one episode (budget %.2f) ==\n", budget);
  while (!world.done()) {
    Action a = agent.decide(world);
    const double delta = attacker.decide(world);
    const int target = world.target_npc_index();
    const bool critical = critical_moment(world, target, adv.beta);
    a.steer_variation = clamp(a.steer_variation + delta, -1.0, 1.0);
    world.step(a, delta);
    attacker.post_step(world);
    trace.add(EpisodeTrace::capture(world, delta, critical, target));

    if (world.step_count() % 15 == 0 || world.done()) {
      std::printf("\nt = %.1f s  (ego '>' at %.0f m, NPCs by index, '=' barriers)\n",
                  world.time(), world.ego_frenet().s);
      std::fputs(render_ascii(world).c_str(), stdout);
    }
  }

  std::printf("\noutcome: %s after %d steps\n",
              world.collided() ? to_string(world.collision()->type) : "clean finish",
              world.step_count());
  trace.write_csv(csv_path);
  std::printf("wrote %zu rows to %s (t,s,d,speed,heading,steer,thrust,delta,"
              "critical,target_npc)\n",
              trace.rows().size(), csv_path.c_str());
  return 0;
}
