// The stealth trade-off (paper Sec. IV-C/V-A): a concealed IMU is nearly
// unnoticeable but sees only the ego's own inertial trace, so the IMU-based
// attacker — trained by the learning-from-teacher scheme — is weaker than
// the camera-based attacker. This example runs both on the same episodes.
//
//   ./imu_stealth_attack [episodes]
#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/zoo.hpp"

using namespace adsec;

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 10;
  std::printf("== camera vs IMU attacker on the e2e agent (%d episodes) ==\n\n",
              episodes);

  PolicyZoo zoo;
  const ExperimentConfig config = zoo.experiment();
  auto victim = zoo.make_e2e_agent();

  Table t({"attacker", "budget", "success rate", "mean adv reward",
           "mean nominal reward"});
  for (double budget : {0.5, 1.0}) {
    auto cam = zoo.make_camera_attacker(budget);
    auto imu = zoo.make_imu_attacker(budget);
    for (Attacker* att :
         {static_cast<Attacker*>(cam.get()), static_cast<Attacker*>(imu.get())}) {
      const auto ms = run_batch(*victim, att, config, episodes, 990000);
      RunningStats adv, nominal;
      for (const auto& m : ms) {
        adv.add(m.adv_reward);
        nominal.add(m.nominal_reward);
      }
      t.add_row({att->name(), fmt(budget, 1), fmt_pct(success_rate(ms)),
                 fmt(adv.mean(), 1), fmt(nominal.mean(), 1)});
    }
  }
  t.print();

  std::printf("\nThe camera attacker observes the NPCs directly and times its\n"
              "injection precisely; the IMU student only imitates it from the\n"
              "inertial signature of the ego's own motion — effective, but with\n"
              "lower success and higher variance. Stealth costs precision.\n");
  return 0;
}
