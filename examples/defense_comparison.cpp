// Compares the paper's two defenses (Sec. VI) on the same attacked episodes:
// adversarial fine-tuning (pi_adv,rho) vs a PNN column behind a Simplex
// switcher (pi_pnn,sigma). Shows the fine-tuned agents' catastrophic
// forgetting at zero budget and the PNN agents' retention of nominal
// performance.
//
//   ./defense_comparison [episodes]
#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/zoo.hpp"
#include "defense/pnn_agent.hpp"

using namespace adsec;

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 10;
  std::printf("== defense comparison: fine-tuning vs PNN (%d episodes/cell) ==\n\n",
              episodes);

  PolicyZoo zoo;
  const ExperimentConfig config = zoo.experiment();

  auto ori = zoo.make_e2e_agent();
  auto ft = zoo.make_finetuned_agent(0.5);
  auto pnn = zoo.make_pnn_agent(0.2);

  Table t({"agent", "budget", "mean nominal reward", "attack success rate"});
  for (double budget : {0.0, 0.5, 1.0}) {
    auto attacker = zoo.make_camera_attacker(budget);
    struct Row {
      DrivingAgent* agent;
      PnnSwitchedAgent* switcher;
    } rows[] = {{ori.get(), nullptr}, {ft.get(), nullptr}, {pnn.get(), pnn.get()}};
    for (const Row& row : rows) {
      if (row.switcher != nullptr) row.switcher->set_attack_budget_estimate(budget);
      const auto ms = run_batch(*row.agent, budget > 0.0 ? attacker.get() : nullptr,
                                config, episodes, 880000);
      RunningStats reward;
      for (const auto& m : ms) reward.add(m.nominal_reward);
      t.add_row({row.agent->name(), fmt(budget, 1), fmt(reward.mean(), 1),
                 fmt_pct(success_rate(ms))});
    }
  }
  t.print();

  std::printf(
      "\nReading the table: at budget 0.0 the fine-tuned agent typically gives up\n"
      "nominal reward (overfitting to adversarial episodes), while the PNN\n"
      "switcher runs the untouched original column and loses nothing. Under\n"
      "attack, both enhanced agents resist far better than pi_ori.\n");
  return 0;
}
