// Quickstart: build the paper's freeway scenario, drive it with the modular
// pipeline, then repeat the same episode under a full-budget action-space
// attack and compare the outcomes.
//
// This example is fully self-contained (no trained policies needed): the
// attacker here is the geometric oracle. See camera_attack_demo.cpp for the
// DRL-trained attack of the paper.
//
//   ./quickstart
#include <cstdio>

#include "agents/modular_agent.hpp"
#include "attack/scripted_attacker.hpp"
#include "core/experiment.hpp"

using namespace adsec;

namespace {

void print_metrics(const char* title, const EpisodeMetrics& m) {
  std::printf("%s\n", title);
  std::printf("  steps            : %d (of 180)\n", m.steps);
  std::printf("  NPCs passed      : %d / 6\n", m.passed_npcs);
  std::printf("  nominal reward   : %.1f\n", m.nominal_reward);
  std::printf("  adversarial rwd  : %.1f\n", m.adv_reward);
  std::printf("  collision        : %s\n",
              m.collision ? to_string(m.collision->type) : "none");
  if (m.attack_effort > 0.0) {
    std::printf("  attack effort    : %.2f (mean |delta| while active)\n",
                m.attack_effort);
  }
  if (m.time_to_collision >= 0.0) {
    std::printf("  time to collide  : %.2f s after first injection\n",
                m.time_to_collision);
  }
  if (m.deviation_rmse >= 0.0) {
    std::printf("  deviation RMSE   : %.3f (lane-width fractions)\n",
                m.deviation_rmse);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== adsec quickstart: freeway lane-changing under action-space "
              "attack ==\n\n");

  // The experiment config bundles the paper's scenario (Sec. III-A): a
  // 3-lane freeway, ego at 16 m/s reference, six NPCs at 6 m/s, 180 steps
  // of 0.1 s.
  ExperimentConfig config;
  ModularAgent agent;

  // 1. Nominal episode: the modular pipeline weaves through all six NPCs.
  const EpisodeMetrics nominal = run_episode(agent, nullptr, config, /*seed=*/1);
  print_metrics("[1] nominal driving (modular pipeline)", nominal);

  // 2. Same seed, same agent — but an attacker perturbs the steering
  //    variation with budget eps = 1 during safety-critical moments.
  ScriptedAttacker attacker(/*budget=*/1.0);
  const EpisodeMetrics attacked =
      evaluate_with_reference(agent, &attacker, config, /*seed=*/1);
  print_metrics("[2] under full-budget action-space attack", attacked);

  // 3. A small budget is absorbed by the PID's per-step rectification.
  ScriptedAttacker weak(/*budget=*/0.25);
  const EpisodeMetrics resisted =
      evaluate_with_reference(agent, &weak, config, /*seed=*/1);
  print_metrics("[3] under small-budget attack (eps = 0.25)", resisted);

  std::printf("Side collision requires enough budget to beat the victim's\n"
              "feedback correction — the core finding the benches quantify.\n");
  return 0;
}
