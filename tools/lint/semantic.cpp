#include "semantic.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

namespace adsec::lint {
namespace {

// ---------------------------------------------------------------- helpers

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::Punct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::Identifier && t.text == text;
}

const Token* prev_tok(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 ? &toks[i - 1] : nullptr;
}

const Token* next_tok(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
}

// `x.f` / `p->f` member access, or `lib::f` where lib is neither std nor
// this_thread (foreign qualifier): the name does not mean what the rule
// thinks it means.
bool member_or_foreign_qualified(const std::vector<Token>& toks,
                                 std::size_t i) {
  const Token* p = prev_tok(toks, i);
  if (p == nullptr) return false;
  if (is_punct(*p, ".") || is_punct(*p, "->")) return true;
  if (is_punct(*p, "::")) {
    const Token* q = i >= 2 ? &toks[i - 2] : nullptr;
    return q != nullptr && !is_ident(*q, "std") && !is_ident(*q, "chrono") &&
           !is_ident(*q, "this_thread") && !is_ident(*q, "adsec");
  }
  return false;
}

bool called(const std::vector<Token>& toks, std::size_t i) {
  const Token* n = next_tok(toks, i);
  return n != nullptr && is_punct(*n, "(");
}

void add(std::vector<Finding>& out, const std::string& path, const Token& t,
         const char* rule, std::string message) {
  out.push_back(Finding{path, t.line, t.col, rule, std::move(message)});
}

bool fixture_file(const std::string& path) {
  return path.find("tests/lint/fixtures") != std::string::npos;
}

// The concurrency rules police the library; tools/bench/tests own their
// threading (and mostly have none). The fixture corpus opts in so the
// rules stay provable in both directions, and the annotation wrapper
// itself is the one sanctioned home of a raw std::mutex.
bool concurrency_scope(const std::string& path) {
  if (path == "src/common/annotations.hpp") return false;
  return starts_with(path, "src/") || fixture_file(path);
}

// Lexically normalize "a/b/../c" and "./c" path segments.
std::string normalize_path(const std::string& raw) {
  std::vector<std::string> parts;
  std::string seg;
  const auto flush = [&] {
    if (seg.empty() || seg == ".") {
    } else if (seg == "..") {
      if (!parts.empty()) parts.pop_back();
    } else {
      parts.push_back(seg);
    }
    seg.clear();
  };
  for (const char c : raw) {
    if (c == '/') {
      flush();
    } else {
      seg += c;
    }
  }
  flush();
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// ------------------------------------------------------- brace classifier
//
// Every `{` is classified once so the walkers can keep a scope stack:
// Namespace braces are transparent, Class braces name a member scope,
// Func braces open an analyzable body (with the owning class recovered
// from a qualified `Owner::method(` head), everything else is Other
// (control blocks, lambdas, initializers, enums).

enum class BraceKind { Other, Namespace, Class, Func };

struct BraceInfo {
  BraceKind kind = BraceKind::Other;
  std::string name;  // class name / owning class of a qualified definition
};

// Skip a balanced <...> starting at toks[j] == "<"; returns the index one
// past the closing ">", or `j` unchanged if it does not close locally.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t j) {
  int depth = 0;
  for (std::size_t k = j; k < toks.size() && k < j + 256; ++k) {
    if (is_punct(toks[k], "<")) ++depth;
    if (is_punct(toks[k], ">")) {
      if (--depth == 0) return k + 1;
    }
    // A statement boundary inside the scan means this `<` was a comparison.
    if (is_punct(toks[k], ";") || is_punct(toks[k], "{")) break;
  }
  return j;
}

// Find the `(` matching a `)` at toks[j], scanning backward.
std::size_t matching_open_paren(const std::vector<Token>& toks,
                                std::size_t j) {
  int depth = 0;
  for (std::size_t k = j + 1; k-- > 0;) {
    if (is_punct(toks[k], ")")) ++depth;
    if (is_punct(toks[k], "(")) {
      if (--depth == 0) return k;
    }
  }
  return j;  // unmatched: caller treats as Other
}

std::map<std::size_t, BraceInfo> classify_braces(
    const std::vector<Token>& toks) {
  std::map<std::size_t, BraceInfo> out;

  // Forward marks: namespace / class / struct heads.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "namespace") {
      for (std::size_t j = i + 1; j < toks.size() && j < i + 16; ++j) {
        if (toks[j].kind == TokKind::Identifier || is_punct(toks[j], "::")) {
          continue;
        }
        if (is_punct(toks[j], "{")) out[j] = {BraceKind::Namespace, ""};
        break;
      }
    } else if (t.text == "class" || t.text == "struct") {
      const Token* p = prev_tok(toks, i);
      if (p != nullptr && is_ident(*p, "enum")) continue;
      std::string name;
      bool frozen = false;  // stop collecting once the base-clause starts
      for (std::size_t j = i + 1; j < toks.size();) {
        const Token& u = toks[j];
        if (u.kind == TokKind::Identifier) {
          // Attribute macros between the keyword and the name
          // (class ADSEC_CAPABILITY("mutex") Mutex) are skipped whole.
          if (starts_with(u.text, "ADSEC_") && called(toks, j)) {
            int depth = 0;
            for (++j; j < toks.size(); ++j) {
              if (is_punct(toks[j], "(")) ++depth;
              if (is_punct(toks[j], ")") && --depth == 0) {
                ++j;
                break;
              }
            }
            continue;
          }
          if (!frozen && u.text != "final") name = u.text;
          ++j;
          continue;
        }
        if (is_punct(u, "<")) {
          const std::size_t adv = skip_angles(toks, j);
          if (adv == j) break;
          j = adv;
          continue;
        }
        if (is_punct(u, "::")) {
          ++j;
          continue;
        }
        if (is_punct(u, ":")) {
          frozen = true;
          ++j;
          continue;
        }
        if (is_punct(u, "{")) {
          if (!name.empty()) out[j] = {BraceKind::Class, name};
          break;
        }
        break;  // ';', '(', ',', '=', ... — forward decl or expression
      }
    }
  }

  // Backward classification of the remaining braces: function body or not.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "{") || out.count(i) != 0) continue;
    for (std::size_t j = i; j-- > 0;) {
      const Token& t = toks[j];
      if (t.kind == TokKind::Identifier) {
        if (t.text == "const" || t.text == "override" || t.text == "final" ||
            t.text == "mutable" || t.text == "noexcept" || t.text == "try") {
          continue;
        }
        break;  // `else {`, enum bodies, trailing return types, ...
      }
      if (is_punct(t, ")")) {
        const std::size_t open = matching_open_paren(toks, j);
        if (open == j || open == 0) break;
        const Token& head = toks[open - 1];
        if (head.kind != TokKind::Identifier) break;  // lambda `](...)`, cast
        // Annotation macros and noexcept(...) sit between the parameter
        // list and the body; skip the group and keep scanning left.
        if (starts_with(head.text, "ADSEC_") || head.text == "noexcept") {
          j = open - 1;  // loop's j-- steps past the macro name next
          continue;
        }
        if (head.text == "if" || head.text == "while" || head.text == "for" ||
            head.text == "switch" || head.text == "catch") {
          break;
        }
        BraceInfo info{BraceKind::Func, ""};
        if (open >= 3 && is_punct(toks[open - 2], "::") &&
            toks[open - 3].kind == TokKind::Identifier) {
          info.name = toks[open - 3].text;  // Owner::method( ... ) {
        }
        out[i] = info;
        break;
      }
      break;  // '=', ',', '[', ';', '{', '}' — initializer / lambda / block
    }
  }
  return out;
}

// ------------------------------------------------------------ file models

struct MutexDecl {
  std::string cls;  // enclosing class; "" = file scope
  std::string name;
  int line;
  int col;
};

struct FileModel {
  std::vector<MutexDecl> mutexes;
  // (enclosing class or "", referenced name) for every identifier inside
  // an ADSEC_* contract annotation's argument list.
  std::set<std::pair<std::string, std::string>> refs;
  std::map<std::size_t, BraceInfo> braces;
};

const std::set<std::string>& contract_macros() {
  static const std::set<std::string> kMacros = {
      "ADSEC_GUARDED_BY",  "ADSEC_PT_GUARDED_BY", "ADSEC_REQUIRES",
      "ADSEC_ACQUIRE",     "ADSEC_RELEASE",       "ADSEC_TRY_ACQUIRE",
      "ADSEC_EXCLUDES",    "ADSEC_ACQUIRE_SHARED", "ADSEC_RELEASE_SHARED",
      "ADSEC_RETURN_CAPABILITY"};
  return kMacros;
}

// Innermost non-namespace scope, or nullptr at file scope.
const BraceInfo* innermost(const std::vector<BraceInfo>& stack) {
  for (std::size_t k = stack.size(); k-- > 0;) {
    if (stack[k].kind != BraceKind::Namespace) return &stack[k];
  }
  return nullptr;
}

// Phase A: collect mutex declarations, contract references, and the
// per-file findings of the unguarded-mutex rule that need no global index
// (raw std::mutex use).
void scan_decls(const std::string& path, const std::vector<Token>& toks,
                FileModel& model, std::vector<Finding>& out) {
  std::vector<BraceInfo> stack;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      const auto it = model.braces.find(i);
      stack.push_back(it == model.braces.end() ? BraceInfo{} : it->second);
      continue;
    }
    if (is_punct(t, "}")) {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (t.kind != TokKind::Identifier) continue;

    if ((t.text == "mutex" || t.text == "shared_mutex") && i >= 2 &&
        is_punct(toks[i - 1], "::") && is_ident(toks[i - 2], "std")) {
      add(out, path, t, "unguarded-mutex",
          "raw std::" + t.text +
              " cannot carry thread-safety annotations; use adsec::Mutex "
              "from common/annotations.hpp");
      continue;
    }

    if (t.text == "Mutex") {
      const Token* p = prev_tok(toks, i);
      if (p != nullptr &&
          (is_punct(*p, ".") || is_punct(*p, "->") || is_ident(*p, "class") ||
           is_ident(*p, "struct"))) {
        continue;
      }
      if (p != nullptr && is_punct(*p, "::") &&
          !(i >= 2 && is_ident(toks[i - 2], "adsec"))) {
        continue;
      }
      const BraceInfo* scope = innermost(stack);
      if (scope != nullptr && scope->kind != BraceKind::Class) {
        continue;  // function-local: out of the rule's scope
      }
      const Token* n = next_tok(toks, i);
      const Token* nn = i + 2 < toks.size() ? &toks[i + 2] : nullptr;
      if (n == nullptr || n->kind != TokKind::Identifier || nn == nullptr ||
          !(is_punct(*nn, ";") || is_punct(*nn, "{"))) {
        continue;  // reference/pointer/parameter shapes
      }
      model.mutexes.push_back(MutexDecl{
          scope == nullptr ? std::string() : scope->name, n->text, n->line,
          n->col});
      continue;
    }

    if (contract_macros().count(t.text) != 0 && called(toks, i)) {
      const BraceInfo* scope = innermost(stack);
      const std::string cls =
          scope != nullptr && scope->kind == BraceKind::Class ? scope->name
                                                              : std::string();
      int depth = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")") && --depth == 0) break;
        if (toks[j].kind == TokKind::Identifier) {
          model.refs.insert({cls, toks[j].text});
        }
      }
    }
  }
}

// ------------------------------------------------------------ mutex index

struct MutexIndex {
  // member name -> set of classes declaring an adsec::Mutex of that name
  std::map<std::string, std::set<std::string>> member_classes;
  // file -> names of its file-scope adsec::Mutex globals
  std::map<std::string, std::set<std::string>> globals_by_file;
};

// Resolve a mutex's short name to a stable node: the innermost enclosing
// class (or the owner of a qualified method definition) that declares it,
// else a same-file global, else — if the name is unique across every
// scanned class — that class. Ambiguous names resolve to "" and produce
// no edges.
std::string resolve_node(const MutexIndex& index, const std::string& path,
                         const std::vector<BraceInfo>& stack,
                         const std::string& name) {
  if (name.empty()) return {};
  const auto classes = index.member_classes.find(name);
  for (std::size_t k = stack.size(); k-- > 0;) {
    const BraceInfo& s = stack[k];
    const bool owner = (s.kind == BraceKind::Class ||
                        (s.kind == BraceKind::Func && !s.name.empty()));
    if (owner && classes != index.member_classes.end() &&
        classes->second.count(s.name) != 0) {
      return s.name + "::" + name;
    }
  }
  const auto globals = index.globals_by_file.find(path);
  if (globals != index.globals_by_file.end() &&
      globals->second.count(name) != 0) {
    return path + "::" + name;
  }
  if (classes != index.member_classes.end() && classes->second.size() == 1) {
    return *classes->second.begin() + "::" + name;
  }
  return {};
}

// ---------------------------------------------------------- cycle machine

struct GraphEdge {
  std::string from;
  std::string to;
  std::string file;
  int line;
  int col;
};

using Adjacency = std::map<std::string, std::set<std::string>>;

// Path b ~> a (zero-length allowed, so a self-loop edge is a cycle).
bool reachable(const Adjacency& adj, const std::string& from,
               const std::string& to) {
  if (from == to) return true;
  std::set<std::string> seen{from};
  std::deque<std::string> frontier{from};
  while (!frontier.empty()) {
    const std::string n = frontier.front();
    frontier.pop_front();
    const auto it = adj.find(n);
    if (it == adj.end()) continue;
    for (const std::string& m : it->second) {
      if (m == to) return true;
      if (seen.insert(m).second) frontier.push_back(m);
    }
  }
  return false;
}

// Shortest path from -> to as "from -> x -> to"; both endpoints included.
std::string path_string(const Adjacency& adj, const std::string& from,
                        const std::string& to) {
  std::map<std::string, std::string> parent;
  std::deque<std::string> frontier{from};
  parent[from] = from;
  while (!frontier.empty() && parent.count(to) == 0) {
    const std::string n = frontier.front();
    frontier.pop_front();
    const auto it = adj.find(n);
    if (it == adj.end()) continue;
    for (const std::string& m : it->second) {
      if (parent.emplace(m, n).second) frontier.push_back(m);
    }
  }
  std::vector<std::string> nodes;
  for (std::string n = to; ; n = parent[n]) {
    nodes.push_back(n);
    if (n == from) break;
    if (parent.count(n) == 0) return from + " -> " + to;  // degenerate
  }
  std::reverse(nodes.begin(), nodes.end());
  std::string out;
  for (const std::string& n : nodes) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  return out;
}

// Report one finding per strongly connected component, at the earliest
// (file, line, col) edge inside it, so the output is byte-stable no
// matter how many edges participate.
void report_cycles(std::vector<GraphEdge> edges, const char* rule,
                   const std::string& noun, const std::string& consequence,
                   std::vector<Finding>& out) {
  Adjacency adj;
  for (const GraphEdge& e : edges) adj[e.from].insert(e.to);
  std::sort(edges.begin(), edges.end(),
            [](const GraphEdge& a, const GraphEdge& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  std::set<std::string> reported;
  for (const GraphEdge& e : edges) {
    if (!reachable(adj, e.to, e.from)) continue;  // edge closes no cycle
    // Canonical SCC key: every node mutually reachable with e.from.
    std::string key;
    for (const auto& [node, unused] : adj) {
      (void)unused;
      if (reachable(adj, e.from, node) && reachable(adj, node, e.from)) {
        key += node + "|";
      }
    }
    if (!reported.insert(key).second) continue;
    const std::string cycle =
        e.from == e.to ? e.from + " -> " + e.from
                       : e.from + " -> " + path_string(adj, e.to, e.from);
    out.push_back(Finding{e.file, e.line, e.col, rule,
                          noun + " cycle: " + cycle + " (" + consequence +
                              ")"});
  }
}

// --------------------------------------------------- guards and blocking

struct Guard {
  std::string var;   // "" for an ADSEC_REQUIRES entry capability
  std::string node;  // resolved mutex node; "" if unresolvable
  int depth;
  bool active;
};

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kGuards = {
      "MutexLock",   "UniqueLock",  "lock_guard",
      "unique_lock", "scoped_lock", "shared_lock"};
  return kGuards;
}

std::string held_description(const std::vector<Guard>& guards) {
  std::string out;
  for (const Guard& g : guards) {
    if (!g.active) continue;
    if (!out.empty()) out += ", ";
    out += g.node.empty() ? (g.var.empty() ? "?" : "'" + g.var + "'") : g.node;
  }
  return out;
}

bool any_active(const std::vector<Guard>& guards) {
  for (const Guard& g : guards) {
    if (g.active) return true;
  }
  return false;
}

// Phase B: walk one file tracking lexical guard scopes; emit lock-order
// edges and lock-held-blocking findings.
void scan_bodies(const std::string& path, const std::vector<Token>& toks,
                 const FileModel& model, const MutexIndex& index,
                 std::vector<GraphEdge>& edges, std::vector<Finding>& out) {
  std::vector<BraceInfo> stack;
  std::vector<Guard> guards;
  std::vector<std::string> pending_requires;
  int depth = 0;
  int paren_depth = 0;

  const auto resolve = [&](const std::string& name) {
    return resolve_node(index, path, stack, name);
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::Punct) {
      if (t.text == "(") ++paren_depth;
      if (t.text == ")" && paren_depth > 0) --paren_depth;
      if (t.text == ";" && paren_depth == 0) pending_requires.clear();
      if (t.text == "{") {
        const auto it = model.braces.find(i);
        const BraceInfo info =
            it == model.braces.end() ? BraceInfo{} : it->second;
        stack.push_back(info);
        ++depth;
        if (info.kind == BraceKind::Func) {
          for (const std::string& name : pending_requires) {
            guards.push_back(Guard{"", resolve(name), depth, true});
          }
          pending_requires.clear();
        }
        continue;
      }
      if (t.text == "}") {
        while (!guards.empty() && guards.back().depth == depth) {
          guards.pop_back();
        }
        if (!stack.empty()) stack.pop_back();
        if (depth > 0) --depth;
        continue;
      }
      continue;
    }
    if (t.kind != TokKind::Identifier) continue;

    // Entry capabilities: ADSEC_REQUIRES(m) on a declarator means the
    // body that follows runs with m held.
    if (t.text == "ADSEC_REQUIRES" && called(toks, i)) {
      int d = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks[j], "(")) ++d;
        if (is_punct(toks[j], ")") && --d == 0) break;
        if (toks[j].kind == TokKind::Identifier) {
          pending_requires.push_back(toks[j].text);
        }
      }
      continue;
    }

    // Guard construction: Type[<...>] var ( mutex-expr ) — the lexical
    // start of a critical section, released at the enclosing `}`.
    if (guard_types().count(t.text) != 0) {
      std::size_t j = i + 1;
      if (j < toks.size() && is_punct(toks[j], "<")) j = skip_angles(toks, j);
      if (j >= toks.size() || toks[j].kind != TokKind::Identifier) continue;
      const std::string var = toks[j].text;
      ++j;
      if (j >= toks.size() ||
          !(is_punct(toks[j], "(") || is_punct(toks[j], "{"))) {
        continue;
      }
      const bool brace_init = toks[j].text == "{";
      int d = 0;
      std::vector<std::string> args(1);
      std::string last_ident;
      for (; j < toks.size(); ++j) {
        const Token& u = toks[j];
        if (is_punct(u, brace_init ? "{" : "(")) {
          if (d++ == 0) continue;
        }
        if (is_punct(u, brace_init ? "}" : ")") && --d == 0) break;
        if (is_punct(u, ",") && d == 1) {
          args.back() = last_ident;
          args.emplace_back();
          last_ident.clear();
          continue;
        }
        if (u.kind == TokKind::Identifier) last_ident = u.text;
      }
      args.back() = last_ident;
      for (const std::string& name : args) {
        const std::string node = resolve(name);
        for (const Guard& g : guards) {
          if (g.active && !g.node.empty() && !node.empty() &&
              g.node != node) {
            edges.push_back(GraphEdge{g.node, node, path, t.line, t.col});
          }
        }
        guards.push_back(Guard{var, node, depth, true});
      }
      continue;
    }

    // UniqueLock unlock-work-relock: `var.unlock()` / `var.lock()` toggle
    // the tracked guard instead of ending its scope.
    if ((t.text == "unlock" || t.text == "lock") && i >= 2 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        toks[i - 2].kind == TokKind::Identifier && called(toks, i)) {
      const std::string& var = toks[i - 2].text;
      for (std::size_t k = guards.size(); k-- > 0;) {
        if (guards[k].var == var) {
          guards[k].active = (t.text == "lock");
          break;
        }
      }
      continue;
    }

    // Condition-variable waits: waiting releases exactly one lock; any
    // OTHER lock still held sleeps with the system wedged behind it.
    if ((t.text == "wait" || t.text == "wait_for" ||
         t.text == "wait_until") &&
        i >= 1 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        called(toks, i) && any_active(guards)) {
      std::string arg;
      for (std::size_t j = i + 2; j < toks.size(); ++j) {
        if (is_punct(toks[j], ",") || is_punct(toks[j], ")")) break;
        if (toks[j].kind == TokKind::Identifier) {
          arg = toks[j].text;
          break;
        }
      }
      const Guard* waited = nullptr;
      for (std::size_t k = guards.size(); k-- > 0;) {
        if (guards[k].active && guards[k].var == arg && !arg.empty()) {
          waited = &guards[k];
          break;
        }
      }
      if (waited == nullptr) {
        add(out, path, t, "lock-held-blocking",
            t.text + "() under " + held_description(guards) +
                " waits on a lock this scope does not visibly hold; waiting "
                "must release the held mutex");
      } else {
        for (const Guard& g : guards) {
          if (!g.active || &g == waited) continue;
          if (g.node.empty() || waited->node.empty() ||
              g.node != waited->node) {
            add(out, path, t, "lock-held-blocking",
                t.text + "('" + arg + "') releases only '" + arg +
                    "' while " +
                    (g.node.empty() ? "another lock" : g.node) +
                    " stays held through the sleep");
            break;
          }
        }
      }
      continue;
    }

    if (!any_active(guards)) continue;

    // Blocking calls under a lock. fclose/fflush are deliberately absent:
    // closing a handle the critical section owns is the cheap tail of the
    // suppressed open/write, not a new wait.
    const bool is_stdio = (t.text == "fopen" || t.text == "fwrite" ||
                           t.text == "fprintf" || t.text == "fputs") &&
                          called(toks, i) &&
                          !member_or_foreign_qualified(toks, i);
    const bool is_stream = (t.text == "ofstream" || t.text == "ifstream" ||
                            t.text == "fstream") &&
                           !member_or_foreign_qualified(toks, i);
    const bool is_sleep =
        (t.text == "sleep_for" || t.text == "sleep_until") &&
        called(toks, i) && !member_or_foreign_qualified(toks, i);
    const Token* p = prev_tok(toks, i);
    const bool is_submit = (t.text == "submit" || t.text == "submit_to") &&
                           called(toks, i) && p != nullptr &&
                           p->kind == TokKind::Punct && p->text != "::";
    if (is_stdio || is_stream || is_sleep || is_submit) {
      const char* what = is_sleep ? "sleeps"
                         : is_submit ? "submits pool work"
                                     : "does file I/O";
      add(out, path, t, "lock-held-blocking",
          t.text + " " + what + " while holding " + held_description(guards) +
              "; move the blocking call outside the critical section or "
              "suppress a serialized-write-is-the-point site");
    }
  }
}

// ---------------------------------------------------------- include graph

void check_includes(const std::vector<SemanticUnit>& units,
                    std::vector<Finding>& out) {
  std::set<std::string> paths;
  for (const SemanticUnit& u : units) paths.insert(u.path);
  std::vector<GraphEdge> edges;
  for (const SemanticUnit& u : units) {
    const std::string dir = dirname_of(u.path);
    for (const Token& t : u.lexed->tokens) {
      if (t.kind != TokKind::PpInclude || t.text.size() < 2 ||
          t.text.front() != '"') {
        continue;
      }
      const std::string target = t.text.substr(1, t.text.size() - 2);
      // Same-directory first (tools/, tests/), then the repo convention
      // of src/-relative spellings; unresolved targets are system or
      // generated headers and produce no edge.
      for (const std::string& candidate :
           {normalize_path(dir.empty() ? target : dir + "/" + target),
            normalize_path("src/" + target), normalize_path(target)}) {
        if (paths.count(candidate) != 0) {
          edges.push_back(GraphEdge{u.path, candidate, u.path, t.line, t.col});
          break;
        }
      }
    }
  }
  report_cycles(std::move(edges), "include-cycle", "include",
                "headers must layer acyclically", out);
}

}  // namespace

void check_semantic(const std::vector<SemanticUnit>& units,
                    std::vector<Finding>& out) {
  check_includes(units, out);

  // Phase A: per-file declarations, refs, raw-mutex findings.
  std::map<std::string, FileModel> models;
  for (const SemanticUnit& u : units) {
    if (!concurrency_scope(u.path)) continue;
    FileModel& model = models[u.path];
    model.braces = classify_braces(u.lexed->tokens);
    scan_decls(u.path, u.lexed->tokens, model, out);
  }

  // Global mutex index + the annotated-but-unreferenced check.
  MutexIndex index;
  for (const auto& [path, model] : models) {
    for (const MutexDecl& m : model.mutexes) {
      if (m.cls.empty()) {
        index.globals_by_file[path].insert(m.name);
      } else {
        index.member_classes[m.name].insert(m.cls);
      }
      if (model.refs.count({m.cls, m.name}) == 0) {
        out.push_back(Finding{
            path, m.line, m.col, "unguarded-mutex",
            "adsec::Mutex '" + m.name +
                "' has no ADSEC_GUARDED_BY/ADSEC_REQUIRES contract "
                "referencing it; annotate what it protects or suppress a "
                "critical-section-only mutex"});
      }
    }
  }

  // Phase B: guard scopes -> lock-order edges + blocking findings.
  std::vector<GraphEdge> edges;
  for (const SemanticUnit& u : units) {
    const auto it = models.find(u.path);
    if (it == models.end()) continue;
    scan_bodies(u.path, u.lexed->tokens, it->second, index, edges, out);
  }
  report_cycles(std::move(edges), "lock-order", "lock acquisition order",
                "two threads taking these locks in opposite orders deadlock",
                out);
}

}  // namespace adsec::lint
