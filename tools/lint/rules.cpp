#include "rules.hpp"

#include <cstddef>

namespace adsec::lint {
namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool is_header(const std::string& path) { return ends_with(path, ".hpp"); }

// Token helpers -------------------------------------------------------------

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::Identifier && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::Punct && t.text == text;
}

const Token* prev_tok(const std::vector<Token>& toks, std::size_t i) {
  return i > 0 ? &toks[i - 1] : nullptr;
}

const Token* next_tok(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
}

// True when toks[i] is used as a member (obj.name / ptr->name) or under a
// non-std qualifier (mylib::name) — i.e. it is NOT the global/std entity
// the rule is after.
bool member_or_foreign_qualified(const std::vector<Token>& toks,
                                 std::size_t i) {
  const Token* p = prev_tok(toks, i);
  if (p == nullptr) return false;
  if (is_punct(*p, ".") || is_punct(*p, "->")) return true;
  if (is_punct(*p, "::")) {
    const Token* q = i >= 2 ? &toks[i - 2] : nullptr;
    return q == nullptr || !(is_ident(*q, "std") || is_ident(*q, "chrono"));
  }
  return false;
}

bool called(const std::vector<Token>& toks, std::size_t i) {
  const Token* n = next_tok(toks, i);
  return n != nullptr && is_punct(*n, "(");
}

// `double time() const { ... }` *declares* a member named time; the rule is
// after *calls*. A call site's preceding token is punctuation or an
// expression keyword, never a type name.
bool declares_function(const std::vector<Token>& toks, std::size_t i) {
  const Token* p = prev_tok(toks, i);
  if (p == nullptr || p->kind != TokKind::Identifier) return false;
  return p->text != "return" && p->text != "co_return" && p->text != "throw" &&
         p->text != "case" && p->text != "co_yield" && p->text != "co_await";
}

void add(std::vector<Finding>& out, const std::string& path, const Token& t,
         const char* rule, std::string message) {
  out.push_back(Finding{path, t.line, t.col, rule, std::move(message)});
}

// nondeterminism ------------------------------------------------------------
//
// Wall clocks and unseeded entropy may only live in the RNG facade, the
// telemetry clock, and the logger's timestamps. Everything else must draw
// randomness from common/rng.hpp so a (seed) pair replays bit-identically.

bool nondeterminism_exempt(const std::string& path) {
  return path == "src/common/rng.hpp" || starts_with(path, "src/telemetry/") ||
         starts_with(path, "src/common/logging");
}

void rule_nondeterminism(const std::string& path,
                         const std::vector<Token>& toks,
                         std::vector<Finding>& out) {
  if (nondeterminism_exempt(path)) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "random_device") {
      add(out, path, t, "nondeterminism",
          "std::random_device is unseedable entropy; draw from common/rng.hpp");
    } else if ((t.text == "steady_clock" || t.text == "system_clock" ||
                t.text == "high_resolution_clock") &&
               !member_or_foreign_qualified(toks, i)) {
      add(out, path, t, "nondeterminism",
          "wall-clock time (std::chrono::" + t.text +
              ") varies run to run; only telemetry/logging may timestamp");
    } else if ((t.text == "rand" || t.text == "srand" || t.text == "time" ||
                t.text == "clock") &&
               called(toks, i) && !member_or_foreign_qualified(toks, i) &&
               !declares_function(toks, i)) {
      add(out, path, t, "nondeterminism",
          "C " + t.text + "() is nondeterministic; draw from common/rng.hpp");
    }
  }
}

// unordered-container -------------------------------------------------------
//
// Hash-map iteration order depends on libstdc++ internals and pointer
// values, so any TU that serializes, renders tables, or writes files must
// use the ordered containers (std::map/std::set) to keep byte-identical
// output. Detection of "writes files" is token-based: the TU mentions an
// fstream or C stdio writer.

bool writes_files(const std::vector<Token>& toks) {
  for (const Token& t : toks) {
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "ofstream" || t.text == "fstream" || t.text == "fopen" ||
        t.text == "fwrite" || t.text == "fprintf") {
      return true;
    }
  }
  return false;
}

void rule_unordered(const std::string& path, const std::vector<Token>& toks,
                    std::vector<Finding>& out) {
  const std::string base = basename_of(path);
  const bool named_output_path = base.find("serialize") != std::string::npos ||
                                 base.find("checkpoint") != std::string::npos ||
                                 base.find("table") != std::string::npos;
  if (!named_output_path && !writes_files(toks)) return;
  for (const Token& t : toks) {
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "unordered_map" || t.text == "unordered_set" ||
        t.text == "unordered_multimap" || t.text == "unordered_multiset") {
      add(out, path, t, "unordered-container",
          "std::" + t.text +
              " iteration order is unstable; this TU produces output, use the "
              "ordered std::map/std::set");
    }
  }
}

// io-hygiene ----------------------------------------------------------------
//
// All library output funnels through common/logging (leveled, thread-safe,
// single-write lines) or common/table (bench tables). Direct stdio in
// library code bypasses log levels and interleaves under the parallel
// runtime. Tools and benches own their stdout and are exempt.

bool io_exempt(const std::string& path) {
  return starts_with(path, "src/common/logging") ||
         starts_with(path, "src/common/table") || starts_with(path, "tools/") ||
         starts_with(path, "bench/");
}

void rule_io(const std::string& path, const std::vector<Token>& toks,
             std::vector<Finding>& out) {
  if (io_exempt(path)) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (member_or_foreign_qualified(toks, i)) continue;
    if (t.text == "cout" || t.text == "cerr" || t.text == "endl") {
      add(out, path, t, "io-hygiene",
          "std::" + t.text + " bypasses common/logging; use log_*()");
    } else if (t.text == "printf" && called(toks, i)) {
      add(out, path, t, "io-hygiene",
          "printf bypasses common/logging; use log_*()");
    }
  }
}

// alloc-hygiene -------------------------------------------------------------
//
// The compute layer is zero-alloc in steady state (PR 4) and everything
// else owns memory through containers, so a naked new/delete or C
// allocator call is either a leak-in-waiting or an unprofiled hot-path
// allocation. Intentional sites (leaked singletons, the counting-allocator
// test shim) carry allow(alloc-hygiene) suppressions.

void rule_alloc(const std::string& path, const std::vector<Token>& toks,
                std::vector<Finding>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    const Token* p = prev_tok(toks, i);
    if (t.text == "new") {
      // `operator new` declares the allocator itself; that is not a use.
      if (p != nullptr && is_ident(*p, "operator")) continue;
      add(out, path, t, "alloc-hygiene",
          "naked new; own memory via containers or unique_ptr");
    } else if (t.text == "delete") {
      // `= delete` deletes a function; `operator delete` declares.
      if (p != nullptr && (is_punct(*p, "=") || is_ident(*p, "operator"))) {
        continue;
      }
      add(out, path, t, "alloc-hygiene",
          "naked delete; own memory via containers or unique_ptr");
    } else if ((t.text == "malloc" || t.text == "calloc" ||
                t.text == "realloc" || t.text == "free" ||
                t.text == "aligned_alloc") &&
               called(toks, i) && !member_or_foreign_qualified(toks, i)) {
      add(out, path, t, "alloc-hygiene",
          t.text + "() bypasses C++ ownership; use containers");
    }
  }
}

// nodiscard-result ----------------------------------------------------------
//
// A function declared to return an Error or *Result type communicates
// failure/diagnostics through that value; discarding it silently is the
// exact bug class the resilience layer exists to prevent. Header
// declarations must carry [[nodiscard]] so the compiler flags call sites.
//
// The check runs only at declaration scope. Brace classification: an
// opening brace is a *code* body (skip its contents) unless it directly
// follows a class/struct/union/enum/namespace head, so locals like
// `TrainResult r(...)` inside inline functions are never flagged.

bool result_type_name(const std::string& name) {
  return name == "Error" || (ends_with(name, "Result") && name != "Result");
}

bool nodiscard_before(const std::vector<Token>& toks, std::size_t type_index);
bool brace_opens_code(const std::vector<Token>& toks, std::size_t i,
                      const std::vector<bool>& code_scope);

void rule_nodiscard(const std::string& path, const std::vector<Token>& toks,
                    std::vector<Finding>& out) {
  if (!is_header(path)) return;
  std::vector<bool> code_scope;  // brace stack: true = function/initializer
  int paren_depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::Punct) {
      if (t.text == "(") ++paren_depth;
      else if (t.text == ")" && paren_depth > 0) --paren_depth;
      else if (t.text == "{")
        code_scope.push_back(brace_opens_code(toks, i, code_scope));
      else if (t.text == "}" && !code_scope.empty()) code_scope.pop_back();
      continue;
    }
    if (t.kind != TokKind::Identifier || paren_depth != 0) continue;
    if (!code_scope.empty() && code_scope.back()) continue;  // inside a body
    if (!result_type_name(t.text)) continue;
    const Token* n = next_tok(toks, i);
    const Token* nn = i + 2 < toks.size() ? &toks[i + 2] : nullptr;
    if (n == nullptr || nn == nullptr) continue;
    if (n->kind != TokKind::Identifier || !is_punct(*nn, "(")) continue;
    const Token* p = prev_tok(toks, i);
    // `struct FooResult ...`, `class Error;` are declarations of the type,
    // and `obj.Error(...)`-style member access is not a return type.
    if (p != nullptr && (is_ident(*p, "struct") || is_ident(*p, "class") ||
                         is_ident(*p, "enum") || is_punct(*p, ".") ||
                         is_punct(*p, "->"))) {
      continue;
    }
    if (!nodiscard_before(toks, i)) {
      add(out, path, t, "nodiscard-result",
          n->text + "() returns " + t.text +
              " but is not [[nodiscard]]; a discarded result is a silently "
              "ignored failure");
    }
  }
}

// Scan back from the return type to the previous declaration boundary
// looking for the nodiscard attribute.
bool nodiscard_before(const std::vector<Token>& toks, std::size_t type_index) {
  for (std::size_t j = type_index; j-- > 0;) {
    const Token& t = toks[j];
    if (t.kind == TokKind::Punct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      return false;
    }
    if (t.kind == TokKind::Identifier && t.text == "nodiscard") return true;
  }
  return false;
}

// Classify `{` at toks[i]: does it open executable code (function body,
// braced initializer, lambda) or a declaration scope (class/namespace)?
bool brace_opens_code(const std::vector<Token>& toks, std::size_t i,
                      const std::vector<bool>& code_scope) {
  if (!code_scope.empty() && code_scope.back()) return true;  // nested block
  for (std::size_t j = i; j-- > 0;) {
    const Token& t = toks[j];
    if (t.kind == TokKind::Identifier) {
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum" || t.text == "namespace") {
        return false;
      }
      if (t.text == "try" || t.text == "do" || t.text == "else") return true;
      continue;  // specifier/name/base — keep scanning
    }
    if (t.kind == TokKind::Punct) {
      if (t.text == ")" || t.text == "=" || t.text == "," || t.text == "(" ||
          t.text == "[") {
        return true;  // function head, initializer, or lambda introducer
      }
      if (t.text == ";" || t.text == "{" || t.text == "}") break;
      continue;  // ::, <, >, &, *, : — part of the head, keep scanning
    }
  }
  return true;  // unknown shapes err toward "code": rules stay quiet inside
}

// orchestrator-atomic-write -------------------------------------------------
//
// Orchestrator artifacts (result cells, the manifest) must survive a crash
// at any instruction, so the only sanctioned persistence path in
// src/orchestrator/ is BinaryWriter::save_checked — write to a temp file,
// rename into place, CRC on read. A direct ofstream/stdio write or a
// std::filesystem mutation there is a torn-file bug waiting for the chaos
// sweep to find it. Provably-safe operations (deleting an entry that
// already failed its CRC) carry allow(orchestrator-atomic-write)
// suppressions.

bool orchestrator_scope(const std::string& path) {
  return starts_with(path, "src/orchestrator/") ||
         basename_of(path).find("orchestrator") != std::string::npos;
}

// `std::filesystem::rename` / `fs::remove` — the qualifier right before the
// call names the filesystem library (member_or_foreign_qualified can't see
// this: it treats any non-std qualifier as foreign).
bool filesystem_qualified(const std::vector<Token>& toks, std::size_t i) {
  const Token* p = prev_tok(toks, i);
  if (p == nullptr || !is_punct(*p, "::")) return false;
  const Token* q = i >= 2 ? &toks[i - 2] : nullptr;
  return q != nullptr && (is_ident(*q, "filesystem") || is_ident(*q, "fs"));
}

void rule_orchestrator_atomic_write(const std::string& path,
                                    const std::vector<Token>& toks,
                                    std::vector<Finding>& out) {
  if (!orchestrator_scope(path)) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "ofstream" || t.text == "fstream") {
      add(out, path, t, "orchestrator-atomic-write",
          "std::" + t.text +
              " writes in place; orchestrator artifacts go through "
              "BinaryWriter::save_checked (temp file + rename + CRC)");
    } else if ((t.text == "fopen" || t.text == "fwrite" ||
                t.text == "fprintf" || t.text == "fputs") &&
               called(toks, i) && !member_or_foreign_qualified(toks, i)) {
      add(out, path, t, "orchestrator-atomic-write",
          t.text +
              "() writes in place; orchestrator artifacts go through "
              "BinaryWriter::save_checked (temp file + rename + CRC)");
    } else if ((t.text == "rename" || t.text == "remove" ||
                t.text == "remove_all" || t.text == "copy_file" ||
                t.text == "resize_file") &&
               called(toks, i) && filesystem_qualified(toks, i)) {
      add(out, path, t, "orchestrator-atomic-write",
          "std::filesystem::" + t.text +
              " mutates the store directly; stage through save_checked, or "
              "suppress a provably-safe op with "
              "allow(orchestrator-atomic-write)");
    }
  }
}

// span-name -----------------------------------------------------------------
//
// Trace span names are the join key across every exported view (Chrome
// trace, per-trace JSONL, the flight recorder ring) and the flight ring
// stores them as raw const char* — so they must be string literals, and
// dashboards/greps rely on one shape: lowercase dotted "subsystem.verb".
// src/telemetry/ is the definition site (SpanGuard's own constructors take
// a `const char* name` parameter) and is exempt.

bool valid_span_name(const std::string& quoted) {
  // Token text retains the quotes; escapes would appear verbatim and fail
  // the character class below, which is what we want.
  if (quoted.size() < 2 || quoted.front() != '"' || quoted.back() != '"') {
    return false;
  }
  const std::string name = quoted.substr(1, quoted.size() - 2);
  int segments = 0;
  std::size_t seg_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;  // empty segment
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  return segments >= 1 && seg_len > 0;  // >= 2 non-empty dotted segments
}

void rule_span_name(const std::string& path, const std::vector<Token>& toks,
                    std::vector<Finding>& out) {
  if (starts_with(path, "src/telemetry/")) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (t.text != "ADSEC_SPAN" && t.text != "SpanGuard") continue;
    // ADSEC_SPAN(  — or —  SpanGuard [var] ( : a construction site. A bare
    // mention (forward declaration, reference type) has no paren and is
    // skipped.
    std::size_t j = i + 1;
    if (t.text == "SpanGuard" && j < toks.size() &&
        toks[j].kind == TokKind::Identifier) {
      ++j;  // named guard variable
    }
    if (j >= toks.size() || !is_punct(toks[j], "(")) continue;
    if (j + 1 >= toks.size()) continue;
    const Token& arg = toks[j + 1];
    if (arg.kind != TokKind::String) {
      add(out, path, t, "span-name",
          "span name must be a string literal (the flight ring stores the "
          "pointer, and exports join on the text)");
      continue;
    }
    if (!valid_span_name(arg.text)) {
      add(out, path, arg, "span-name",
          "span name " + arg.text +
              " must be lowercase dotted, like \"subsystem.verb\"");
    }
  }
}

// include-iostream-in-header ------------------------------------------------
//
// <iostream> in a header injects the static ios initializer into every TU
// and drags ~1k lines of stream machinery into the include graph; headers
// that need to format use <string>/<cstdio> in their .cpp instead.

void rule_include_iostream(const std::string& path,
                           const std::vector<Token>& toks,
                           std::vector<Finding>& out) {
  if (!is_header(path)) return;
  for (const Token& t : toks) {
    if (t.kind == TokKind::PpInclude && t.text == "<iostream>") {
      add(out, path, t, "include-iostream-in-header",
          "<iostream> in a header: include it in the .cpp (or use "
          "common/logging)");
    }
  }
}

// intrinsics-isolation -------------------------------------------------------
//
// x86 intrinsics may only live in the dedicated SIMD translation units
// (basename containing "_avx2", e.g. nn/matrix_avx2.cpp), which are the
// only TUs compiled with -mavx2 -mfma. An <immintrin.h> include or an
// _mm*/__m256 token anywhere else would either fail to compile on the
// portable build or — worse — silently let the compiler emit AVX2 in a TU
// that must stay runtime-dispatched (the whole point of the kernel table).

bool simd_tu(const std::string& path) {
  return basename_of(path).find("_avx2") != std::string::npos;
}

bool intrinsics_identifier(const std::string& text) {
  return starts_with(text, "_mm") || starts_with(text, "__m128") ||
         starts_with(text, "__m256") || starts_with(text, "__m512");
}

void rule_intrinsics_isolation(const std::string& path,
                               const std::vector<Token>& toks,
                               std::vector<Finding>& out) {
  if (simd_tu(path)) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::PpInclude &&
        (t.text == "<immintrin.h>" || t.text == "<x86intrin.h>" ||
         t.text == "<emmintrin.h>" || t.text == "<xmmintrin.h>" ||
         t.text == "<avxintrin.h>" || t.text == "<avx2intrin.h>")) {
      add(out, path, t, "intrinsics-isolation",
          "intrinsics header " + t.text +
              " outside a dedicated *_avx2 SIMD TU; keep vector code behind "
              "the nn/kernel_table.hpp dispatch");
    } else if (t.kind == TokKind::Identifier && intrinsics_identifier(t.text) &&
               !member_or_foreign_qualified(toks, i)) {
      add(out, path, t, "intrinsics-isolation",
          "intrinsic token " + t.text +
              " outside a dedicated *_avx2 SIMD TU; keep vector code behind "
              "the nn/kernel_table.hpp dispatch");
    }
  }
}

}  // namespace

const std::vector<RuleDesc>& rule_table() {
  static const std::vector<RuleDesc> kRules = {
      {"nondeterminism",
       "wall clocks / unseeded entropy outside common/rng.hpp, src/telemetry/, "
       "common/logging"},
      {"unordered-container",
       "unordered_{map,set} in serialize/checkpoint/table TUs or any TU that "
       "writes files"},
      {"io-hygiene",
       "printf/std::cout/std::cerr/std::endl outside common/logging, "
       "common/table, tools/, bench/"},
      {"alloc-hygiene", "naked new/delete or C allocator calls anywhere"},
      {"nodiscard-result",
       "header functions returning Error/*Result types must be [[nodiscard]]"},
      {"orchestrator-atomic-write",
       "direct file writes / std::filesystem mutations in src/orchestrator/ "
       "bypassing the checked temp-file+rename path"},
      {"span-name",
       "ADSEC_SPAN/SpanGuard names must be lowercase dotted string literals "
       "(\"subsystem.verb\")"},
      {"include-iostream-in-header", "<iostream> included from a header"},
      {"intrinsics-isolation",
       "<immintrin.h>-family includes or _mm*/__m128/__m256/__m512 tokens "
       "outside a dedicated *_avx2 SIMD TU"},
      // Cross-file rules implemented by the semantic pass (semantic.cpp);
      // they ride the same fixture/suppression/report machinery.
      {"unguarded-mutex",
       "raw std::mutex in src/ (use adsec::Mutex), or an adsec::Mutex no "
       "ADSEC_GUARDED_BY/ADSEC_REQUIRES contract references"},
      {"lock-order",
       "cycle in the static lock-acquisition graph (lexically nested guard "
       "scopes + ADSEC_REQUIRES entry capabilities): a potential deadlock"},
      {"lock-held-blocking",
       "file I/O, sleeps, pool submits, or a condition-variable wait on a "
       "different mutex while a lock is held"},
      {"include-cycle",
       "cyclic quoted-#include chain among scanned files (one report per "
       "cycle)"},
  };
  return kRules;
}

void check_file(const std::string& path, const LexedFile& lexed,
                std::vector<Finding>& out) {
  const std::vector<Token>& toks = lexed.tokens;
  rule_nondeterminism(path, toks, out);
  rule_unordered(path, toks, out);
  rule_io(path, toks, out);
  rule_alloc(path, toks, out);
  rule_nodiscard(path, toks, out);
  rule_orchestrator_atomic_write(path, toks, out);
  rule_span_name(path, toks, out);
  rule_include_iostream(path, toks, out);
  rule_intrinsics_isolation(path, toks, out);
}

}  // namespace adsec::lint
