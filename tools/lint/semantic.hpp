// Cross-file semantic pass for adsec_lint.
//
// Where rules.cpp matches single tokens, this pass builds lightweight
// structures over the whole scan set and checks contracts that only exist
// between declarations:
//
//   * an include graph (quoted includes resolved within the scan set) —
//     cycles are reported once per strongly connected component;
//   * a mutex symbol index (adsec::Mutex class members and file-scope
//     globals, plus every ADSEC_* annotation argument that references
//     them) backing the unguarded-mutex rule;
//   * per-function lexical guard scopes (MutexLock/UniqueLock/std guards,
//     ADSEC_REQUIRES entry capabilities, UniqueLock unlock()/lock()
//     toggles) feeding a global lock-acquisition-order graph — a cycle
//     there is a potential deadlock — and the lock-held-blocking rule.
//
// The analysis is lexical, not a compiler: aliases, locks reached through
// references, and callback-shaped nesting are invisible (see DESIGN.md
// "Concurrency contracts" for the limits). It errs quiet: a mutex
// expression that cannot be resolved to a declaration never produces an
// ordering edge or a foreign-wait finding.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace adsec::lint {

// One lexed translation unit handed to the cross-file pass. The LexedFile
// is owned by the caller and must outlive the call.
struct SemanticUnit {
  std::string path;  // repo-relative, forward slashes
  const LexedFile* lexed;
};

// Run the cross-file rules (unguarded-mutex, lock-order,
// lock-held-blocking, include-cycle) over the whole scan set. Findings
// are appended raw: unsorted, and with suppression comments NOT yet
// applied — the driver owns both steps.
void check_semantic(const std::vector<SemanticUnit>& units,
                    std::vector<Finding>& out);

}  // namespace adsec::lint
