// adsec_lint CLI.
//
//   adsec_lint [--root DIR] [--json PATH] [--list-rules] [scan-roots...]
//
// Scans src/ tools/ bench/ tests/ under --root (default: cwd) unless
// explicit scan roots are given. Prints findings as file:line:col: [rule]
// message. Exit 0 = clean, 1 = findings, 2 = usage or I/O error.
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "lint.hpp"

namespace {

void usage() {
  std::printf(
      "usage: adsec_lint [--root DIR] [--json PATH] [--list-rules] "
      "[scan-roots...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_out;
  adsec::lint::LintOptions opts;
  std::vector<std::string> explicit_roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--list-rules") {
      for (const adsec::lint::RuleDesc& r : adsec::lint::rule_table()) {
        std::printf("%-28s %s\n", r.name, r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "adsec_lint: unknown flag '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      explicit_roots.push_back(arg);
    }
  }
  if (!explicit_roots.empty()) opts.roots = explicit_roots;

  adsec::lint::LintResult result;
  try {
    result = adsec::lint::run_lint(root, opts);
  } catch (const adsec::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  for (const adsec::lint::Finding& f : result.findings) {
    std::printf("%s:%d:%d: [%s] %s\n", f.file.c_str(), f.line, f.col,
                f.rule.c_str(), f.message.c_str());
  }
  std::printf("adsec_lint: %zu finding(s) in %d file(s), %d suppressed\n",
              result.findings.size(), result.files_scanned, result.suppressed);
  if (!json_out.empty() &&
      !adsec::lint::write_findings_json(json_out, result)) {
    std::fprintf(stderr, "adsec_lint: cannot write %s\n", json_out.c_str());
    return 2;
  }
  return result.findings.empty() ? 0 : 1;
}
