// adsec_lint CLI.
//
//   adsec_lint [--root DIR] [--json PATH] [--diff-base REF] [--list-rules]
//              [scan-roots...]
//
// Scans src/ tools/ bench/ tests/ under --root (default: cwd) unless
// explicit scan roots are given. Prints findings as file:line:col: [rule]
// message. Exit 0 = clean, 1 = findings, 2 = usage or I/O error.
//
// --diff-base REF reports findings only for files changed since REF
// (`git diff --name-only REF`); the full tree is still lexed so the
// cross-file rules (include-cycle, lock-order) see every edge. CI keeps
// the full scan; incremental mode is for local pre-push loops.
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "lint.hpp"

namespace {

void usage() {
  std::printf(
      "usage: adsec_lint [--root DIR] [--json PATH] [--diff-base REF] "
      "[--list-rules] [scan-roots...]\n");
}

bool lintable(const std::string& path) {
  const auto has_suffix = [&](const char* ext) {
    const std::string e(ext);
    return path.size() > e.size() &&
           path.compare(path.size() - e.size(), e.size(), e) == 0;
  };
  return has_suffix(".cpp") || has_suffix(".hpp");
}

// A git ref we are willing to splice into a shell command line. Refs are
// names, hashes, or rev expressions (origin/main, HEAD~2, v1.0^) — anything
// else is rejected rather than quoted.
bool safe_ref(const std::string& ref) {
  if (ref.empty()) return false;
  for (const char c : ref) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.' || c == '/' || c == '~' || c == '^' || c == '@';
    if (!ok) return false;
  }
  return true;
}

// Changed files since `ref`, repo-relative, filtered to lintable paths.
// Returns false (with a message on stderr) when git fails.
bool changed_files(const std::string& root, const std::string& ref,
                   std::vector<std::string>& out) {
  if (!safe_ref(ref)) {
    std::fprintf(stderr, "adsec_lint: unusable ref '%s'\n", ref.c_str());
    return false;
  }
  const std::string cmd =
      "git -C '" + root + "' diff --name-only " + ref + " -- 2>/dev/null";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "adsec_lint: cannot run git diff\n");
    return false;
  }
  std::string line;
  for (int c = std::fgetc(pipe); c != EOF; c = std::fgetc(pipe)) {
    if (c == '\n') {
      if (lintable(line)) out.push_back(line);
      line.clear();
    } else {
      line += static_cast<char>(c);
    }
  }
  if (lintable(line)) out.push_back(line);
  if (pclose(pipe) != 0) {
    std::fprintf(stderr, "adsec_lint: git diff --name-only %s failed\n",
                 ref.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_out;
  std::string diff_base;
  adsec::lint::LintOptions opts;
  std::vector<std::string> explicit_roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--diff-base" && i + 1 < argc) {
      diff_base = argv[++i];
    } else if (arg == "--list-rules") {
      for (const adsec::lint::RuleDesc& r : adsec::lint::rule_table()) {
        std::printf("%-28s %s\n", r.name, r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "adsec_lint: unknown flag '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      explicit_roots.push_back(arg);
    }
  }
  if (!explicit_roots.empty()) opts.roots = explicit_roots;

  if (!diff_base.empty()) {
    if (!changed_files(root, diff_base, opts.only_files)) return 2;
    std::printf("adsec_lint: --diff-base %s selected %zu changed file(s)\n",
                diff_base.c_str(), opts.only_files.size());
    if (opts.only_files.empty()) {
      // Nothing changed: an empty filter would mean "report everything",
      // so short-circuit to a clean empty report instead.
      adsec::lint::LintResult empty;
      std::printf("adsec_lint: 0 finding(s) in 0 file(s), 0 suppressed\n");
      if (!json_out.empty() &&
          !adsec::lint::write_findings_json(json_out, empty)) {
        std::fprintf(stderr, "adsec_lint: cannot write %s\n",
                     json_out.c_str());
        return 2;
      }
      return 0;
    }
  }

  adsec::lint::LintResult result;
  try {
    result = adsec::lint::run_lint(root, opts);
  } catch (const adsec::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  for (const adsec::lint::Finding& f : result.findings) {
    std::printf("%s:%d:%d: [%s] %s\n", f.file.c_str(), f.line, f.col,
                f.rule.c_str(), f.message.c_str());
  }
  std::printf("adsec_lint: %zu finding(s) in %d file(s), %d suppressed\n",
              result.findings.size(), result.files_scanned, result.suppressed);
  if (!json_out.empty() &&
      !adsec::lint::write_findings_json(json_out, result)) {
    std::fprintf(stderr, "adsec_lint: cannot write %s\n", json_out.c_str());
    return 2;
  }
  return result.findings.empty() ? 0 : 1;
}
