#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace adsec::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Prefixes that glue onto a following quote: u8R"(..)", LR"(..)", u"..".
bool is_string_prefix(const std::string& id) {
  return id == "R" || id == "L" || id == "u" || id == "U" || id == "u8" ||
         id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : s_(src) {}

  LexedFile run() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\n') {
        advance();
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance();
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (c == '"') {
        string_lit("");
      } else if (c == '\'') {
        char_lit();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' &&
                  std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
      } else if (ident_start(c)) {
        identifier();
      } else {
        punct();
      }
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (s_[pos_] == '\n') {
      ++line_;
      col_ = 1;
      line_had_token_.push_back(false);
    } else {
      ++col_;
    }
    ++pos_;
  }

  void emit(TokKind kind, std::string text, int line, int col) {
    out_.tokens.push_back(Token{kind, std::move(text), line, col});
    mark_token_on(line);
  }

  void mark_token_on(int line) {
    while (static_cast<int>(line_had_token_.size()) < line + 1) {
      line_had_token_.push_back(false);
    }
    line_had_token_[static_cast<std::size_t>(line)] = true;
  }

  bool line_has_token(int line) const {
    return static_cast<std::size_t>(line) < line_had_token_.size() &&
           line_had_token_[static_cast<std::size_t>(line)];
  }

  void line_comment() {
    const int start_line = line_;
    const bool standalone = !line_has_token(start_line);
    std::string text;
    while (pos_ < s_.size() && s_[pos_] != '\n') {
      text.push_back(s_[pos_]);
      advance();
    }
    record_suppressions(text, start_line, standalone);
  }

  void block_comment() {
    const int start_line = line_;
    const bool standalone = !line_has_token(start_line);
    std::string text;
    advance();  // '/'
    advance();  // '*'
    while (pos_ < s_.size() && !(s_[pos_] == '*' && peek(1) == '/')) {
      text.push_back(s_[pos_]);
      advance();
    }
    if (pos_ < s_.size()) {
      advance();  // '*'
      advance();  // '/'
    }
    record_suppressions(text, start_line, standalone);
  }

  // Parse every "adsec-lint: allow(a, b)" occurrence in a comment.
  void record_suppressions(const std::string& text, int line, bool standalone) {
    const std::string marker = "adsec-lint:";
    std::size_t at = text.find(marker);
    bool any = false;
    while (at != std::string::npos) {
      std::size_t p = text.find("allow(", at);
      if (p == std::string::npos) break;
      p += 6;
      const std::size_t close = text.find(')', p);
      if (close == std::string::npos) break;
      std::string name;
      for (std::size_t i = p; i <= close; ++i) {
        const char c = i < close ? text[i] : ',';
        if (c == ',') {
          if (!name.empty()) {
            out_.allow[line].insert(name);
            any = true;
            name.clear();
          }
        } else if (c != ' ' && c != '\t') {
          name.push_back(c);
        }
      }
      at = text.find(marker, close);
    }
    if (any && standalone) out_.allow_standalone.insert(line);
  }

  void string_lit(const std::string& prefix) {
    const int l = line_;
    const int c = col_ - static_cast<int>(prefix.size());
    if (!prefix.empty() && prefix.back() == 'R') {
      raw_string(l, c);
      return;
    }
    const std::size_t start = pos_;
    advance();  // opening quote
    while (pos_ < s_.size() && s_[pos_] != '"' && s_[pos_] != '\n') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) advance();
      advance();
    }
    if (pos_ < s_.size() && s_[pos_] == '"') advance();
    // Keep the literal verbatim (quotes included): the span-name rule
    // validates the text, and findings quote it back at the author.
    emit(TokKind::String, s_.substr(start, pos_ - start), l, c);
  }

  void raw_string(int l, int c) {
    advance();  // opening quote
    std::string delim;
    while (pos_ < s_.size() && s_[pos_] != '(') {
      delim.push_back(s_[pos_]);
      advance();
    }
    const std::string close = ")" + delim + "\"";
    while (pos_ < s_.size() && s_.compare(pos_, close.size(), close) != 0) {
      advance();
    }
    for (std::size_t i = 0; i < close.size() && pos_ < s_.size(); ++i) {
      advance();
    }
    emit(TokKind::String, "<raw-string>", l, c);
  }

  void char_lit() {
    const int l = line_;
    const int c = col_;
    advance();  // opening quote
    while (pos_ < s_.size() && s_[pos_] != '\'' && s_[pos_] != '\n') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) advance();
      advance();
    }
    if (pos_ < s_.size() && s_[pos_] == '\'') advance();
    emit(TokKind::CharLit, "<char>", l, c);
  }

  void number() {
    const int l = line_;
    const int c = col_;
    std::string text;
    while (pos_ < s_.size()) {
      const char ch = s_[pos_];
      if (ident_char(ch) || ch == '.' || ch == '\'') {
        text.push_back(ch);
        advance();
      } else if ((ch == '+' || ch == '-') && !text.empty() &&
                 (text.back() == 'e' || text.back() == 'E' ||
                  text.back() == 'p' || text.back() == 'P')) {
        text.push_back(ch);
        advance();
      } else {
        break;
      }
    }
    emit(TokKind::Number, std::move(text), l, c);
  }

  void identifier() {
    const int l = line_;
    const int c = col_;
    std::string text;
    while (pos_ < s_.size() && ident_char(s_[pos_])) {
      text.push_back(s_[pos_]);
      advance();
    }
    if (peek() == '"' && is_string_prefix(text)) {
      string_lit(text);
      return;
    }
    emit(TokKind::Identifier, std::move(text), l, c);
  }

  void punct() {
    const int l = line_;
    const int c = col_;
    const char ch = s_[pos_];
    if (ch == ':' && peek(1) == ':') {
      advance();
      advance();
      emit(TokKind::Punct, "::", l, c);
      return;
    }
    if (ch == '-' && peek(1) == '>') {
      advance();
      advance();
      emit(TokKind::Punct, "->", l, c);
      return;
    }
    advance();
    emit(TokKind::Punct, std::string(1, ch), l, c);
  }

  // Whole logical line (backslash continuations included) as one token.
  void preprocessor() {
    const int l = line_;
    const int c = col_;
    std::string text;
    while (pos_ < s_.size()) {
      if (s_[pos_] == '\\' && peek(1) == '\n') {
        advance();
        advance();
        continue;
      }
      if (s_[pos_] == '\n') break;
      // A // comment ends the directive (and may hold a suppression).
      if (s_[pos_] == '/' && peek(1) == '/') {
        mark_token_on(l);  // the directive counts as a token on this line
        line_comment();
        break;
      }
      text.push_back(s_[pos_]);
      advance();
    }
    // "#  include <x>" -> target "<x>"; "#include \"x\"" -> target "\"x\"".
    std::size_t p = 1;
    while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
    if (text.compare(p, 7, "include") == 0) {
      p += 7;
      while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
      std::string target;
      if (p < text.size() && text[p] == '<') {
        const std::size_t e = text.find('>', p);
        if (e != std::string::npos) target = text.substr(p, e - p + 1);
      } else if (p < text.size() && text[p] == '"') {
        const std::size_t e = text.find('"', p + 1);
        if (e != std::string::npos) target = text.substr(p, e - p + 1);
      }
      emit(TokKind::PpInclude, std::move(target), l, c);
    } else {
      emit(TokKind::PpOther, std::move(text), l, c);
    }
    at_line_start_ = true;
  }

  const std::string& s_;
  std::size_t pos_{0};
  int line_{1};
  int col_{1};
  bool at_line_start_{true};
  std::vector<bool> line_had_token_{false, false};  // 1-based line index
  LexedFile out_;
};

}  // namespace

LexedFile lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace adsec::lint
