// Determinism-contract rules for adsec_lint.
//
// Each rule is a token-level check over one file plus its repo-relative
// path (path decides which rules apply: the allowed-module lists below are
// the single source of truth for "who may use wall clocks", "who may
// print", and so on). Rule names are stable identifiers — they appear in
// findings, JSON reports, and allow(...) suppression comments.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace adsec::lint {

struct Finding {
  std::string file;  // repo-relative, forward slashes
  int line;
  int col;
  std::string rule;
  std::string message;
};

struct RuleDesc {
  const char* name;
  const char* summary;
};

// Every shipped rule, in report order.
const std::vector<RuleDesc>& rule_table();

// Run all rules over one lexed file. `path` must be repo-relative with
// forward slashes (e.g. "src/rl/trainer.cpp"); findings are appended
// unsuppressed — the driver applies allow(...) comments afterwards.
void check_file(const std::string& path, const LexedFile& lexed,
                std::vector<Finding>& out);

}  // namespace adsec::lint
