// Driver for adsec_lint: walks the tree, applies suppressions, reports.
//
// The scan set defaults to src/, tools/, bench/, and tests/ under the repo
// root; tests/lint/fixtures/ is always skipped (its files are deliberate
// violations driven directly by the fixture gtest suite). Findings are
// sorted by (file, line, col, rule) so output and the JSON report are
// byte-stable across runs — the linter holds itself to the determinism
// contract it enforces.
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace adsec::lint {

struct LintOptions {
  // Repo-relative directories (or single files) to scan.
  std::vector<std::string> roots{"src", "tools", "bench", "tests"};
  // When non-empty, findings are reported only for these repo-relative
  // paths. The whole scan set is still lexed and fed to the cross-file
  // pass — the include graph and lock-order graph need every edge — so
  // incremental mode (--diff-base) narrows the *report*, never the
  // analysis.
  std::vector<std::string> only_files;
};

struct LintResult {
  std::vector<Finding> findings;
  int files_scanned{0};
  int suppressed{0};
};

struct SourceUnit {
  std::string path;  // repo-relative, forward slashes
  std::string source;
};

// Lint a set of in-memory files together: per-file token rules plus the
// cross-file semantic pass (include cycles, mutex contracts, lock order).
// Suppression comments are applied per finding against the file that
// carries it; findings land sorted by (file, line, col, rule).
[[nodiscard]] LintResult lint_sources(
    const std::vector<SourceUnit>& units,
    const std::vector<std::string>& only_files = {});

// Lint one in-memory file. `rel_path` decides which path-scoped rules
// apply. Suppression comments are honoured; the pre-suppression finding
// count is added to *total (when non-null) minus what survived.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& rel_path,
                                               const std::string& source,
                                               int* suppressed = nullptr);

// Walk `repo_root` per `opts` and lint every .cpp/.hpp found.
// Throws adsec::Error{Io} when a root or file cannot be read.
[[nodiscard]] LintResult run_lint(const std::string& repo_root,
                                  const LintOptions& opts = {});

// Findings report in the telemetry JSON style (json_quote escaping,
// compact one-object-per-finding array).
std::string findings_json(const LintResult& result);

// Write findings_json to `path`; false on I/O failure.
bool write_findings_json(const std::string& path, const LintResult& result);

}  // namespace adsec::lint
