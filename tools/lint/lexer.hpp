// Comment/string-aware C++ tokenizer for adsec_lint.
//
// The linter's rules match *tokens*, not raw text, so a banned name inside
// a string literal ("delete the checkpoint"), a comment, or a longer
// identifier (time_steps) can never false-positive. The lexer also parses
// suppression comments:
//
//   do_risky_thing();  // adsec-lint: allow(alloc-hygiene)
//   // adsec-lint: allow(io-hygiene)   <- on a line of its own, applies to
//   next_line();                          the following line
//
// Preprocessor directives are captured as single tokens (#include targets
// keep their <...>/"..." spelling for the include rules); macro bodies are
// deliberately not expanded or scanned — the repo style keeps logic out of
// macros, and scanning definitions would double-report every use site.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace adsec::lint {

enum class TokKind {
  Identifier,  // names and keywords, undifferentiated
  Number,      // numeric literal (digit separators consumed)
  String,      // string literal, verbatim with quotes (raw-string body swallowed)
  CharLit,     // character literal
  Punct,       // operators/punctuation; "::" and "->" kept as one token
  PpInclude,   // #include directive; text is the target incl. delimiters
  PpOther,     // any other preprocessor directive (whole logical line)
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
  int col;   // 1-based
};

struct LexedFile {
  std::vector<Token> tokens;
  // line -> rule names allowed on that line ("all" is a wildcard).
  std::map<int, std::set<std::string>> allow;
  // Lines that contain nothing but a suppression comment; their allow set
  // also covers the next line.
  std::set<int> allow_standalone;
};

LexedFile lex(const std::string& source);

}  // namespace adsec::lint
