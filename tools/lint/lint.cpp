#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "semantic.hpp"
#include "telemetry/events.hpp"  // json_quote: one escaping policy repo-wide

namespace adsec::lint {
namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

std::string slashed(const fs::path& p) {
  std::string s = p.generic_string();
  return s;
}

bool in_fixture_corpus(const std::string& rel) {
  return rel.find("tests/lint/fixtures") != std::string::npos;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    throw Error(ErrorCode::Io, "adsec_lint: cannot read " + p.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

bool suppressed_at(const LexedFile& lexed, const Finding& f) {
  const auto match = [&](int line) {
    const auto it = lexed.allow.find(line);
    if (it == lexed.allow.end()) return false;
    return it->second.count(f.rule) > 0 || it->second.count("all") > 0;
  };
  if (match(f.line)) return true;
  // A comment-only suppression line also covers the line below it.
  return lexed.allow_standalone.count(f.line - 1) > 0 && match(f.line - 1);
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
}

}  // namespace

LintResult lint_sources(const std::vector<SourceUnit>& units,
                        const std::vector<std::string>& only_files) {
  std::vector<LexedFile> lexed(units.size());
  std::map<std::string, const LexedFile*> by_path;
  std::vector<SemanticUnit> sem;
  sem.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    lexed[i] = lex(units[i].source);
    by_path[units[i].path] = &lexed[i];
    sem.push_back(SemanticUnit{units[i].path, &lexed[i]});
  }

  std::vector<Finding> raw;
  for (std::size_t i = 0; i < units.size(); ++i) {
    check_file(units[i].path, lexed[i], raw);
  }
  check_semantic(sem, raw);

  const std::set<std::string> keep(only_files.begin(), only_files.end());
  LintResult result;
  result.files_scanned = static_cast<int>(units.size());
  for (Finding& f : raw) {
    // Suppressions apply before the report filter: an allow() comment
    // silences a finding whether or not its file is in the changed set.
    const auto it = by_path.find(f.file);
    if (it != by_path.end() && suppressed_at(*it->second, f)) {
      ++result.suppressed;
    } else if (keep.empty() || keep.count(f.file) != 0) {
      result.findings.push_back(std::move(f));
    }
  }
  sort_findings(result.findings);
  return result;
}

std::vector<Finding> lint_source(const std::string& rel_path,
                                 const std::string& source, int* suppressed) {
  LintResult result = lint_sources({SourceUnit{rel_path, source}});
  if (suppressed != nullptr) *suppressed += result.suppressed;
  return std::move(result.findings);
}

LintResult run_lint(const std::string& repo_root, const LintOptions& opts) {
  const fs::path root(repo_root);
  std::vector<fs::path> files;
  for (const std::string& r : opts.roots) {
    const fs::path base = root / r;
    if (fs::is_regular_file(base)) {
      // An explicitly named file is always linted — this is how CI proves
      // each positive fixture trips the gate. Only directory walks skip
      // the corpus.
      files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base)) {
      throw Error(ErrorCode::Io,
                  "adsec_lint: no such scan root: " + base.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && lintable_extension(entry.path()) &&
          !in_fixture_corpus(slashed(fs::relative(entry.path(), root)))) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceUnit> units;
  units.reserve(files.size());
  for (const fs::path& p : files) {
    units.push_back(SourceUnit{slashed(fs::relative(p, root)), read_file(p)});
  }
  return lint_sources(units, opts.only_files);
}

std::string findings_json(const LintResult& result) {
  using telemetry::json_quote;
  std::string out;
  out += "{\"tool\":\"adsec_lint\",";
  out += "\"files_scanned\":" + std::to_string(result.files_scanned) + ",";
  out += "\"suppressed\":" + std::to_string(result.suppressed) + ",";
  out += "\"rules\":[";
  bool first = true;
  for (const RuleDesc& r : rule_table()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + json_quote(r.name) +
           ",\"summary\":" + json_quote(r.summary) + "}";
  }
  out += "],\"findings\":[";
  first = true;
  for (const Finding& f : result.findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"file\":" + json_quote(f.file) +
           ",\"line\":" + std::to_string(f.line) +
           ",\"col\":" + std::to_string(f.col) +
           ",\"rule\":" + json_quote(f.rule) +
           ",\"message\":" + json_quote(f.message) + "}";
  }
  out += "]}\n";
  return out;
}

bool write_findings_json(const std::string& path, const LintResult& result) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << findings_json(result);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace adsec::lint
