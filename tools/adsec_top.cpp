// Live metrics viewer: `top` for an adsec process.
//
//   adsec_top --socket PATH | --json PATH [--interval-ms N] [--watch]
//
// Two sources, one rendering:
//
//   --socket PATH   scrape the Prometheus-text exposition socket opened by
//                   `adsec_serve --metrics-socket PATH` (one connection per
//                   refresh; the daemon answers and closes).
//   --json PATH     read a metrics JSON snapshot file — either a final
//                   --metrics-out dump or the live file a grid run keeps
//                   fresh with `adsec_cli --grid ... --metrics-out PATH
//                   --metrics-every-ms N`.
//
// Default is one render and exit (scriptable; the output is plain tables).
// --watch redraws every --interval-ms (default 1000) until SIGINT. Exit
// status 2 on an unreadable source or malformed document.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "serve/json.hpp"
#include "telemetry/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ADSEC_TOP_HAVE_UDS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#else
#define ADSEC_TOP_HAVE_UDS 0
#endif

using namespace adsec;

namespace {

std::atomic<bool> g_stop{false};
void handle_stop(int) { g_stop.store(true, std::memory_order_relaxed); }

struct Options {
  std::string socket;
  std::string json;
  int interval_ms = 1000;
  bool watch = false;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
      "usage: %s --socket PATH | --json PATH [--interval-ms N] [--watch]\n"
      "sources:   --socket  prometheus text from adsec_serve --metrics-socket\n"
      "           --json    metrics JSON file (--metrics-out; pair with\n"
      "                     --metrics-every-ms for a live view of a grid run)\n"
      "mode:      one render by default; --watch redraws every --interval-ms\n"
      "           (default 1000) until interrupted\n",
      argv0);
  std::exit(code);
}

bool parse_int(const std::string& s, int min_value, int& out) {
  try {
    std::size_t used = 0;
    const long v = std::stol(s, &used);
    if (used != s.size() || v < min_value || v > 1000000000L) return false;
    out = static_cast<int>(v);
    return true;
  } catch (...) {
    return false;
  }
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (arg == "--socket") opt.socket = value();
    else if (arg == "--json") opt.json = value();
    else if (arg == "--interval-ms") {
      const std::string v = value();
      if (!parse_int(v, 1, opt.interval_ms)) {
        std::fprintf(stderr, "invalid value '%s' for %s\n", v.c_str(), arg.c_str());
        usage(argv[0], 2);
      }
    } else if (arg == "--watch") opt.watch = true;
    else if (arg == "--once") opt.watch = false;
    else if (arg == "--help" || arg == "-h") usage(argv[0], 0);
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0], 2);
    }
  }
  if (opt.socket.empty() == opt.json.empty()) {
    std::fprintf(stderr, "exactly one of --socket or --json is required\n");
    usage(argv[0], 2);
  }
  return opt;
}

// Both sources normalize into a MetricsSnapshot so the renderer (and the
// quantile math — telemetry::HistogramSnapshot::quantile) is shared.

// ---- source: metrics JSON file (MetricsSnapshot::to_json shape) ----

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  out.clear();
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    out.append(buf, n);
    if (n < sizeof buf) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

telemetry::MetricsSnapshot from_json(const std::string& text) {
  telemetry::MetricsSnapshot snap;
  const serve::JsonValue doc = serve::JsonValue::parse(text);
  if (const serve::JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, v] : counters->members()) {
      snap.counters.emplace_back(name,
                                 static_cast<std::uint64_t>(v.as_number()));
    }
  }
  if (const serve::JsonValue* gauges = doc.find("gauges")) {
    for (const auto& [name, v] : gauges->members()) {
      snap.gauges.emplace_back(name, v.as_number());
    }
  }
  if (const serve::JsonValue* hists = doc.find("histograms")) {
    for (const auto& [name, v] : hists->members()) {
      telemetry::HistogramSnapshot h;
      h.name = name;
      if (const serve::JsonValue* c = v.find("count")) {
        h.count = static_cast<std::uint64_t>(c->as_number());
      }
      if (const serve::JsonValue* s = v.find("sum")) h.sum = s->as_number();
      if (const serve::JsonValue* b = v.find("bounds")) {
        for (const auto& x : b->items()) h.bounds.push_back(x.as_number());
      }
      if (const serve::JsonValue* c = v.find("counts")) {
        for (const auto& x : c->items()) {
          h.counts.push_back(static_cast<std::uint64_t>(x.as_number()));
        }
      }
      if (h.counts.size() != h.bounds.size() + 1) {
        throw Error(ErrorCode::Corrupt,
                    "histogram '" + name + "': counts/bounds size mismatch");
      }
      snap.histograms.push_back(std::move(h));
    }
  }
  return snap;
}

// ---- source: Prometheus exposition text (the --metrics-socket scrape) ----

// Parses exactly what telemetry::metrics_prometheus_text() emits: # TYPE
// comments select the metric kind; histogram buckets arrive cumulative and
// are differenced back so HistogramSnapshot::quantile applies unchanged.
telemetry::MetricsSnapshot from_prometheus(const std::string& text) {
  telemetry::MetricsSnapshot snap;
  std::string cur_hist;          // name of the histogram being assembled
  telemetry::HistogramSnapshot hist;
  std::uint64_t prev_cumulative = 0;

  auto flush_hist = [&] {
    if (cur_hist.empty()) return;
    // The +Inf bucket became the overflow slot; counts currently holds one
    // entry per bound plus overflow, still cumulative-differenced.
    snap.histograms.push_back(std::move(hist));
    hist = telemetry::HistogramSnapshot{};
    cur_hist.clear();
    prev_cumulative = 0;
  };

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') continue;  // TYPE comments carry no values

    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      throw Error(ErrorCode::Corrupt, "prometheus line without value: " + line);
    }
    const std::string key = line.substr(0, sp);
    const double value = std::strtod(line.c_str() + sp + 1, nullptr);

    const std::size_t brace = key.find('{');
    if (brace != std::string::npos) {  // histogram bucket sample
      const std::string base = key.substr(0, brace);
      if (base.size() < 7 || base.substr(base.size() - 7) != "_bucket") {
        throw Error(ErrorCode::Corrupt, "unexpected labeled sample: " + line);
      }
      const std::string name = base.substr(0, base.size() - 7);
      if (name != cur_hist) {
        flush_hist();
        cur_hist = name;
        hist.name = name;
      }
      const std::size_t le = key.find("le=\"", brace);
      if (le == std::string::npos) {
        throw Error(ErrorCode::Corrupt, "bucket without le label: " + line);
      }
      const std::string bound = key.substr(le + 4, key.find('"', le + 4) - (le + 4));
      const auto cumulative = static_cast<std::uint64_t>(value);
      hist.counts.push_back(cumulative - prev_cumulative);
      prev_cumulative = cumulative;
      if (bound != "+Inf") hist.bounds.push_back(std::strtod(bound.c_str(), nullptr));
      continue;
    }

    if (!cur_hist.empty() && key == cur_hist + "_sum") {
      hist.sum = value;
      continue;
    }
    if (!cur_hist.empty() && key == cur_hist + "_count") {
      hist.count = static_cast<std::uint64_t>(value);
      flush_hist();
      continue;
    }
    // Plain sample: counter or gauge. The text does not distinguish them
    // per-sample, so integral values render as counters and the rest as
    // gauges — a display decision, not a registry round-trip.
    if (value == static_cast<double>(static_cast<std::uint64_t>(value))) {
      snap.counters.emplace_back(key, static_cast<std::uint64_t>(value));
    } else {
      snap.gauges.emplace_back(key, value);
    }
  }
  flush_hist();
  return snap;
}

#if ADSEC_TOP_HAVE_UDS
bool scrape_socket(const std::string& path, std::string& out) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  out.clear();
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}
#else
bool scrape_socket(const std::string&, std::string&) { return false; }
#endif

void render(const telemetry::MetricsSnapshot& snap) {
  if (!snap.counters.empty()) {
    Table t({"counter", "value"});
    for (const auto& [name, value] : snap.counters) {
      t.add_row({name, std::to_string(value)});
    }
    t.print();
  }
  if (!snap.gauges.empty()) {
    Table t({"gauge", "value"});
    for (const auto& [name, value] : snap.gauges) {
      t.add_row({name, fmt(value, 3)});
    }
    t.print();
  }
  if (!snap.histograms.empty()) {
    Table t({"histogram", "count", "mean", "p50", "p90", "p99"});
    for (const auto& h : snap.histograms) {
      const double mean = h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      t.add_row({h.name, std::to_string(h.count), fmt(mean, 3),
                 fmt(h.quantile(0.5), 3), fmt(h.quantile(0.9), 3),
                 fmt(h.quantile(0.99), 3)});
    }
    t.print();
  }
  if (snap.counters.empty() && snap.gauges.empty() && snap.histograms.empty()) {
    std::printf("(no metrics)\n");
  }
}

int render_once(const Options& opt, bool clear) {
  std::string raw;
  telemetry::MetricsSnapshot snap;
  try {
    if (!opt.socket.empty()) {
      if (!scrape_socket(opt.socket, raw)) {
        std::fprintf(stderr, "adsec_top: cannot scrape %s\n", opt.socket.c_str());
        return 2;
      }
      snap = from_prometheus(raw);
    } else {
      if (!read_file(opt.json, raw)) {
        std::fprintf(stderr, "adsec_top: cannot read %s\n", opt.json.c_str());
        return 2;
      }
      snap = from_json(raw);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "adsec_top: %s\n", e.what());
    return 2;
  }
  if (clear) std::printf("\x1b[H\x1b[2J");
  render(snap);
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.watch) return render_once(opt, false);

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  int code = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    code = render_once(opt, true);
    if (code != 0) break;  // a vanished source ends the watch, not the shell
    // Sleep in small slices so Ctrl-C lands promptly even at long intervals.
    for (int waited = 0;
         waited < opt.interval_ms && !g_stop.load(std::memory_order_relaxed);
         waited += 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return code;
}
