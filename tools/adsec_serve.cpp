// Long-running evaluation daemon: adsec_cli's experiment grid as a service.
//
//   adsec_serve --socket PATH | --watch REQ --out RES
//               [--workers N] [--queue-depth N] [--poll-ms N] [--once]
//               [--zoo DIR] [--report PATH] [--metrics-socket PATH]
//               [--flight-dir DIR] [--metrics-out PATH] [--chrome-trace PATH]
//               [--trace-jsonl PATH] [--log-json PATH]
//
// Clients stream JSONL requests (see src/serve/protocol.hpp):
//
//   {"id":"r1","agent":"e2e","attacker":"camera","budget":1.0,
//    "scenario":"paper","seed":700000,"episodes":3}
//
// and read back one record per status transition (queued, running, then a
// terminal done/failed/rejected). Two transports:
//
//   --socket PATH   Unix-domain stream socket; each connection gets exactly
//                   its own requests' records back.
//   --watch REQ     poll REQ for appended request lines and append records
//   --out RES       to RES ("mailbox" mode — any tool that can append a
//                   line is a client). --once processes the lines already
//                   in REQ, drains, reports, and exits (CI smoke mode).
//
// Control: {"op":"report"} answers with the tail-latency report plus the
// full metrics-registry snapshot in-band; {"op":"metrics"} answers with the
// Prometheus text rendering; {"op":"shutdown"} (or SIGTERM/SIGINT) drains
// admitted work, prints the per-request-class latency table, and exits.
// SIGUSR1 emits an on-demand report (latency classes + metrics snapshot)
// without stopping; the daemon exits non-zero if any report write failed.
// --report PATH also writes the final report JSON.
//
// Live exposition: --metrics-socket PATH opens a connection-per-scrape UDS
// listener answering every connection with the Prometheus text (`nc -U` or
// tools/adsec_top is a client). The flight recorder is always on; fatal
// signals and admission-rejection storms dump flight_<n>_<ts>.json into
// --flight-dir (default: the working directory).
//
// Admission is bounded (--queue-depth): when the queue is full, a request
// is answered immediately with status "rejected" and the backpressure
// reason instead of growing an invisible backlog.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/metrics_endpoint.hpp"
#include "serve/report.hpp"
#include "serve/server.hpp"
#include "serve/spec.hpp"
#include "serve/transport.hpp"
#include "telemetry/telemetry.hpp"

using namespace adsec;

namespace {

std::atomic<bool> g_stop{false};    // SIGTERM/SIGINT: drain and exit
std::atomic<bool> g_report{false};  // SIGUSR1: emit an on-demand report

void handle_stop(int) { g_stop.store(true, std::memory_order_relaxed); }
void handle_report(int) { g_report.store(true, std::memory_order_relaxed); }

struct Options {
  std::string socket;
  std::string watch;
  std::string out;
  int workers = 0;        // 0 => hardware_jobs()
  int queue_depth = 64;
  int poll_ms = 20;
  bool once = false;
  std::string zoo;
  std::string report;
  std::string metrics_socket;
  std::string flight_dir;
  telemetry::TelemetryOptions telemetry;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
      "usage: %s --socket PATH | --watch REQ --out RES\n"
      "          [--workers N] [--queue-depth N] [--poll-ms N] [--once]\n"
      "          [--zoo DIR] [--report PATH] [--metrics-socket PATH]\n"
      "          [--flight-dir DIR] [--metrics-out PATH] [--chrome-trace PATH]\n"
      "          [--trace-jsonl PATH] [--log-json PATH]\n"
      "requests:  one JSON object per line, e.g.\n"
      "           {\"id\":\"r1\",\"agent\":\"e2e\",\"attacker\":\"camera\","
      "\"episodes\":3,\"seed\":700000}\n"
      "agents:    modular | e2e | finetune:<rho> | pnn:<sigma> | pnn-detector:<sigma>\n"
      "attackers: none | oracle | noise | full | camera | imu | td3\n"
      "control:   {\"op\":\"report\"} in-band report+metrics, {\"op\":\"metrics\"}\n"
      "           prometheus text, {\"op\":\"shutdown\"} drain+exit\n"
      "signals:   SIGTERM/SIGINT graceful drain, SIGUSR1 on-demand report\n",
      argv0);
  std::exit(code);
}

bool parse_int(const std::string& s, int min_value, int& out) {
  try {
    std::size_t used = 0;
    const long v = std::stol(s, &used);
    if (used != s.size() || v < min_value || v > 1000000000L) return false;
    out = static_cast<int>(v);
    return true;
  } catch (...) {
    return false;
  }
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    auto bad_value = [&](const std::string& v) {
      std::fprintf(stderr, "invalid value '%s' for %s\n", v.c_str(), arg.c_str());
      usage(argv[0], 2);
    };
    if (arg == "--socket") opt.socket = value();
    else if (arg == "--watch") opt.watch = value();
    else if (arg == "--out") opt.out = value();
    else if (arg == "--workers") {
      const std::string v = value();
      if (!parse_int(v, 0, opt.workers)) bad_value(v);
    } else if (arg == "--queue-depth") {
      const std::string v = value();
      if (!parse_int(v, 0, opt.queue_depth)) bad_value(v);
    } else if (arg == "--poll-ms") {
      const std::string v = value();
      if (!parse_int(v, 1, opt.poll_ms)) bad_value(v);
    } else if (arg == "--once") opt.once = true;
    else if (arg == "--zoo") opt.zoo = value();
    else if (arg == "--report") opt.report = value();
    else if (arg == "--metrics-socket") opt.metrics_socket = value();
    else if (arg == "--flight-dir") opt.flight_dir = value();
    else if (arg == "--metrics-out") opt.telemetry.metrics_out = value();
    else if (arg == "--chrome-trace") opt.telemetry.chrome_trace = value();
    else if (arg == "--trace-jsonl") opt.telemetry.trace_jsonl = value();
    else if (arg == "--log-json") opt.telemetry.events_jsonl = value();
    else if (arg == "--help" || arg == "-h") usage(argv[0], 0);
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0], 2);
    }
  }
  const bool file_mode = !opt.watch.empty() || !opt.out.empty();
  if (opt.socket.empty() == !file_mode) {
    std::fprintf(stderr, "exactly one of --socket or --watch/--out is required\n");
    usage(argv[0], 2);
  }
  if (file_mode && (opt.watch.empty() || opt.out.empty())) {
    std::fprintf(stderr, "--watch and --out must be given together\n");
    usage(argv[0], 2);
  }
  if (opt.once && file_mode == false) {
    std::fprintf(stderr, "--once requires --watch/--out mode\n");
    usage(argv[0], 2);
  }
  return opt;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  return n == text.size() && closed;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  set_log_level(LogLevel::Warn);
  telemetry::set_thread_name("main");
  if (!opt.zoo.empty()) runtime_config().zoo_dir = opt.zoo;
  if (opt.telemetry.any() && !telemetry::configure(opt.telemetry)) {
    std::fprintf(stderr, "cannot open --log-json file '%s' for writing\n",
                 opt.telemetry.events_jsonl.c_str());
    return 2;
  }
  telemetry::set_flight_enabled(true);
  if (!opt.flight_dir.empty()) telemetry::set_flight_dir(opt.flight_dir);
  telemetry::install_flight_signal_handlers();

  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);
#ifdef SIGUSR1
  std::signal(SIGUSR1, handle_report);
#endif

  serve::ServerOptions server_opts;
  server_opts.workers = opt.workers;
  server_opts.queue_depth = static_cast<std::size_t>(opt.queue_depth);

  int exit_code = 0;
  try {
    serve::EvalServer server(server_opts, {});
    std::unique_ptr<serve::MetricsEndpoint> scrape;
    if (!opt.metrics_socket.empty()) {
      scrape = std::make_unique<serve::MetricsEndpoint>(opt.metrics_socket);
    }
    std::printf("adsec_serve: %d workers, queue depth %zu, %s\n",
                server.workers(), server.queue_depth(),
                opt.socket.empty()
                    ? ("watching " + opt.watch + " -> " + opt.out).c_str()
                    : ("listening on " + opt.socket).c_str());
    std::fflush(stdout);

    // The SIGUSR1 on-demand report: the human-readable latency table plus
    // the full metrics-registry snapshot as one JSON line (same payload as
    // the in-band {"op":"report"} answer).
    const auto print_report = [&server] {
      server.report().to_table().print();
      std::printf("%s\n", serve::full_report_json().c_str());
      std::fflush(stdout);
    };

    if (!opt.socket.empty()) {
      serve::UdsTransport transport(server, opt.socket);
      transport.run(g_stop, [&print_report] {
        if (g_report.exchange(false, std::memory_order_relaxed)) {
          print_report();
        }
      });
    } else {
      serve::FileWatchTransport transport(server, opt.watch, opt.out);
      if (opt.once) {
        transport.poll_once();
      } else {
        transport.run(g_stop, opt.poll_ms, [&transport] {
          if (g_report.exchange(false, std::memory_order_relaxed)) {
            transport.write_report();
          }
        });
      }
      server.drain();  // answer everything before the final report line
      transport.write_report();
      if (transport.report_write_failed()) {
        std::fprintf(stderr, "adsec_serve: report write to %s failed\n",
                     opt.out.c_str());
        exit_code = 2;
      }
    }
    server.drain();
    // A SIGUSR1 that landed during the drain window was not serviced by the
    // transport tick (it had already exited); honor it now rather than
    // dropping the request on the floor.
    if (g_report.exchange(false, std::memory_order_relaxed)) {
      print_report();
    }

    // Shutdown banner: the tail-latency table plus the optional JSON dump.
    const serve::LatencyReport report = server.report();
    report.to_table().print();
    if (!opt.report.empty()) {
      if (write_text_file(opt.report, report.to_json() + "\n")) {
        std::printf("wrote %s\n", opt.report.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", opt.report.c_str());
        exit_code = 2;
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "adsec_serve: %s\n", e.what());
    return 2;
  }

  if (opt.telemetry.any()) {
    const telemetry::FinalizeResult fin = telemetry::finalize();
    const auto report_file = [&exit_code](const std::string& path, bool written) {
      if (path.empty()) return;
      if (written) {
        std::printf("wrote %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        exit_code = 2;
      }
    };
    report_file(opt.telemetry.metrics_out, fin.metrics_written);
    report_file(opt.telemetry.chrome_trace, fin.trace_written);
    report_file(opt.telemetry.trace_jsonl, fin.trace_jsonl_written);
    if (!opt.telemetry.events_jsonl.empty())
      std::printf("wrote %s\n", opt.telemetry.events_jsonl.c_str());
  }
  return exit_code;
}
