#!/usr/bin/env python3
"""Compare a fresh BENCH_micro.json against a committed baseline.

Only dimensionless ratio columns (speedup-style) are gated: raw ns columns
shift with the host and would make the gate flaky, while a kernel's speedup
over its own reference implementation on the same machine is stable. The
full comparison table is printed as GitHub-flavored markdown so CI can
append it to the job summary; the exit code carries the verdict.

Ratios are only comparable within one SIMD dispatch tier: the baseline is
recorded on an AVX2 host, and e.g. the avx2-vs-scalar table is not written
at all when the runner lacks AVX2. Both JSON files carry a top-level
"simd_tier" field; when the tiers differ the comparison is reported but
nothing is gated (and missing tier-dependent tables/rows are not failures).

Usage:
    bench_compare.py BASELINE CURRENT [--tolerance 0.15]
"""

import argparse
import json
import sys

# Headers whose values are dimensionless ratios, gated at +/- tolerance.
RATIO_HEADERS = ("speedup", "ratio")


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    tables = {}
    for table in doc.get("tables", []):
        rows = {row[0]: row for row in table.get("rows", [])}
        tables[table["name"]] = {"headers": table.get("headers", []), "rows": rows}
    return tables, doc.get("simd_tier", "unknown")


def is_number(text):
    try:
        float(text)
        return True
    except (TypeError, ValueError):
        return False


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative drift on ratio columns")
    args = parser.parse_args()

    base, base_tier = load_doc(args.baseline)
    cur, cur_tier = load_doc(args.current)
    tier_match = base_tier == cur_tier
    failures = []

    print("## Benchmark comparison (current vs committed baseline)")
    if not tier_match:
        print(f"\n> **Note:** SIMD tier mismatch — baseline recorded on"
              f" `{base_tier}`, current run on `{cur_tier}`. Ratio columns"
              f" are reported but NOT gated, and tier-dependent tables/rows"
              f" absent from the current run are not failures.")
        # One machine-greppable line on stderr (stdout is the markdown
        # summary) so CI and humans can distinguish "passed because nothing
        # was gated" from "passed within tolerance" without parsing tables.
        print(f"bench_compare: tier mismatch (baseline={base_tier}, "
              f"current={cur_tier}) — ratios skipped, nothing gated",
              file=sys.stderr)
    for name, base_table in sorted(base.items()):
        cur_table = cur.get(name)
        if cur_table is None:
            if tier_match:
                failures.append(f"table `{name}` missing from current run")
            else:
                print(f"\n### {name}\n\n(absent on `{cur_tier}` host — skipped)")
            continue
        headers = base_table["headers"]
        print(f"\n### {name}\n")
        print("| " + " | ".join(headers[:1]) + " | column | baseline | current"
              " | ratio | gated |")
        print("| --- | --- | --- | --- | --- | --- |")
        for key, base_row in base_table["rows"].items():
            cur_row = cur_table["rows"].get(key)
            if cur_row is None:
                if tier_match:
                    failures.append(f"{name}: row `{key}` missing from current run")
                continue
            for i, header in enumerate(headers[1:], start=1):
                if not (is_number(base_row[i]) and i < len(cur_row)
                        and is_number(cur_row[i])):
                    continue
                b, c = float(base_row[i]), float(cur_row[i])
                ratio = c / b if b != 0 else float("inf")
                gated = header in RATIO_HEADERS and tier_match
                verdict = "yes" if gated else "no"
                if gated and abs(ratio - 1.0) > args.tolerance:
                    verdict = "**FAIL**"
                    failures.append(
                        f"{name}: `{key}` {header} drifted "
                        f"{b:g} -> {c:g} (ratio {ratio:.3f}, "
                        f"tolerance +/-{args.tolerance:.0%})")
                print(f"| {key} | {header} | {b:g} | {c:g} | {ratio:.3f}"
                      f" | {verdict} |")

    if failures:
        print("\n### Regressions\n")
        for f in failures:
            print(f"- {f}")
        print(f"\nbench_compare: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("\nAll gated columns within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
