// Command-line experiment driver: run any (agent, attacker, scenario)
// combination without writing code.
//
//   adsec_cli [--agent modular|e2e|finetune:<rho>|pnn:<sigma>|pnn-detector:<sigma>]
//             [--attacker none|oracle|noise|full|camera|imu|td3]
//             [--budget <eps>] [--episodes <n>] [--scenario <preset>]
//             [--seed <base>] [--jobs <n>] [--checkpoint-every <n>]
//             [--with-reference] [--csv <path>] [--list]
//             [--metrics-out <path>] [--chrome-trace <path>]
//             [--trace-jsonl <path>] [--log-json <path>]
//             [--metrics-every-ms <n>]
//
// Learned agents/attackers come from the policy zoo (training on first use).
// --checkpoint-every N makes that training crash-safe: progress is saved to
// <zoo>/<name>.ckpt every N steps and a rerun resumes from it bit-exactly.
// Episodes run on the parallel rollout runtime (--jobs worker threads,
// default hardware_concurrency); results are bit-identical to --jobs 1.
//
// Telemetry (src/telemetry): --metrics-out dumps the final metrics registry
// snapshot as JSON, --chrome-trace writes profiling spans in Chrome
// trace-event format (open in Perfetto / chrome://tracing), --trace-jsonl
// writes the same spans as one causally-linked JSON object per line
// (trace_id/span_id/parent_span_id), --log-json streams structured run
// events as JSON Lines while the run executes. All are independent;
// omitting them keeps telemetry disabled (~1 branch per instrumentation
// site). --metrics-every-ms N additionally rewrites the --metrics-out file
// every N ms while the run executes (tear-free via rename), so adsec_top
// --json can watch a long grid live.
//
// Grid mode runs a whole victim x attacker x scenario x seed cross-product
// through the fault-tolerant orchestrator (src/orchestrator) instead of a
// single spec:
//
//   adsec_cli --grid "agents=modular,e2e;attackers=none,camera;budgets=1.0"
//             --store-dir DIR [--resume] [--jobs N] [--csv PREFIX]
//
// Finished cells commit to the content-addressed store in DIR as they
// complete; a killed run restarted with --resume recomputes only what never
// committed and renders byte-identical tables. Without --resume a non-empty
// store is refused (exit 2) so stale results are never silently mixed in.
// A grid whose every cell finished exits 0; permanently failed cells are
// listed with their error class and retry count and exit with status 3.
//
// Malformed flags (unknown names, non-numeric or out-of-range values) exit
// with status 2 and usage on stderr.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/zoo.hpp"
#include "orchestrator/dag.hpp"
#include "orchestrator/merge.hpp"
#include "runtime/aggregate.hpp"
#include "runtime/parallel_eval.hpp"
#include "serve/spec.hpp"
#include "telemetry/telemetry.hpp"

using namespace adsec;

namespace {

struct Options {
  std::string agent = "modular";
  std::string attacker = "none";
  double budget = 1.0;
  int episodes = 10;
  std::string scenario = "paper";
  std::uint64_t seed = 700000;
  int jobs = 0;  // 0 => hardware_concurrency
  int batch_lanes = 1;  // > 1 => cross-episode batched inference per worker
  int checkpoint_every = -1;  // -1 => leave ADSEC_CKPT_EVERY as-is
  bool with_reference = false;
  std::string csv;
  std::string grid;       // grid-spec string; non-empty selects grid mode
  std::string store_dir;  // result store directory (grid mode)
  bool resume = false;    // accept a non-empty store and reuse its cells
  int deadline_ms = 0;    // per-job deadline (grid mode); 0 disables
  int metrics_every_ms = 0;  // live --metrics-out rewrite cadence; 0 off
  telemetry::TelemetryOptions telemetry;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
      "usage: %s [--agent A] [--attacker T] [--budget E] [--episodes N]\n"
      "          [--scenario P] [--seed S] [--jobs N] [--batch-lanes N]\n"
      "          [--checkpoint-every N] [--with-reference] [--csv PATH] [--list]\n"
      "          [--grid SPEC --store-dir DIR [--resume] [--deadline-ms N]]\n"
      "          [--metrics-out PATH] [--chrome-trace PATH] [--trace-jsonl PATH]\n"
      "          [--log-json PATH] [--metrics-every-ms N]\n"
      "grid:      SPEC like \"agents=modular,e2e;attackers=none,camera;\n"
      "           budgets=0.5,1.0;scenarios=paper;episodes=3;seeds=2\";\n"
      "           finished cells commit to --store-dir and --resume reuses\n"
      "           them (exit 3 when any cell permanently failed)\n"
      "agents:    modular | e2e | finetune:<rho> | pnn:<sigma> | pnn-detector:<sigma>\n"
      "attackers: none | oracle | noise | full | camera | imu | td3\n"
      "scenarios: paper dense sparse two-lane s-curve fast-npc\n"
      "telemetry: --metrics-out  final counters/gauges/histograms (JSON)\n"
      "           --chrome-trace profiling spans (Chrome trace-event JSON;\n"
      "                          open at https://ui.perfetto.dev)\n"
      "           --trace-jsonl  causal spans, one JSON object per line\n"
      "           --log-json     structured run events (JSON Lines)\n"
      "           --metrics-every-ms N  rewrite --metrics-out every N ms\n"
      "                          during the run (watch with adsec_top --json)\n",
      argv0);
  std::exit(code);
}

// Strict numeric parsing: the whole string must be consumed and the result
// in range, otherwise the caller reports the flag and exits 2. atoi/atof
// would silently read "10x" as 10 and "abc" as 0.
bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size() || std::isnan(v)) return false;
    out = v;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_int(const std::string& s, int min_value, int& out) {
  try {
    std::size_t used = 0;
    const long v = std::stol(s, &used);
    if (used != s.size() || v < min_value || v > 1000000000L) return false;
    out = static_cast<int>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size() || s[0] == '-') return false;
    out = v;
    return true;
  } catch (...) {
    return false;
  }
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    auto bad_value = [&](const std::string& v) {
      std::fprintf(stderr, "invalid value '%s' for %s\n", v.c_str(), arg.c_str());
      usage(argv[0], 2);
    };
    if (arg == "--agent") opt.agent = value();
    else if (arg == "--attacker") opt.attacker = value();
    else if (arg == "--budget") {
      const std::string v = value();
      if (!parse_double(v, opt.budget) || opt.budget < 0.0) bad_value(v);
    } else if (arg == "--episodes") {
      const std::string v = value();
      if (!parse_int(v, 1, opt.episodes)) bad_value(v);
    } else if (arg == "--scenario") opt.scenario = value();
    else if (arg == "--seed") {
      const std::string v = value();
      if (!parse_u64(v, opt.seed)) bad_value(v);
    } else if (arg == "--jobs") {
      const std::string v = value();
      if (!parse_int(v, 0, opt.jobs)) bad_value(v);
    } else if (arg == "--batch-lanes") {
      const std::string v = value();
      if (!parse_int(v, 1, opt.batch_lanes)) bad_value(v);
    } else if (arg == "--checkpoint-every") {
      const std::string v = value();
      if (!parse_int(v, 0, opt.checkpoint_every)) bad_value(v);
    } else if (arg == "--with-reference") opt.with_reference = true;
    else if (arg == "--csv") opt.csv = value();
    else if (arg == "--grid") opt.grid = value();
    else if (arg == "--store-dir") opt.store_dir = value();
    else if (arg == "--resume") opt.resume = true;
    else if (arg == "--deadline-ms") {
      const std::string v = value();
      if (!parse_int(v, 0, opt.deadline_ms)) bad_value(v);
    }
    else if (arg == "--metrics-out") opt.telemetry.metrics_out = value();
    else if (arg == "--chrome-trace") opt.telemetry.chrome_trace = value();
    else if (arg == "--trace-jsonl") opt.telemetry.trace_jsonl = value();
    else if (arg == "--log-json") opt.telemetry.events_jsonl = value();
    else if (arg == "--metrics-every-ms") {
      const std::string v = value();
      if (!parse_int(v, 1, opt.metrics_every_ms)) bad_value(v);
    }
    else if (arg == "--list") {
      std::printf("scenario presets:");
      for (const auto& n : scenario_preset_names()) std::printf(" %s", n.c_str());
      std::printf("\n");
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0], 2);
    }
  }
  if (opt.metrics_every_ms > 0 && opt.telemetry.metrics_out.empty()) {
    std::fprintf(stderr, "--metrics-every-ms requires --metrics-out\n");
    usage(argv[0], 2);
  }
  return opt;
}

// Shared tail for both modes: flush telemetry sinks and report what landed.
// Returns 0, or 2 when a requested sink could not be written.
int finalize_telemetry(const Options& opt) {
  if (!opt.telemetry.any()) return 0;
  const telemetry::FinalizeResult fin = telemetry::finalize();
  bool write_failed = false;
  const auto report = [&write_failed](const std::string& path, bool written) {
    if (path.empty()) return;
    if (written) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      write_failed = true;
    }
  };
  report(opt.telemetry.metrics_out, fin.metrics_written);
  report(opt.telemetry.chrome_trace, fin.trace_written);
  report(opt.telemetry.trace_jsonl, fin.trace_jsonl_written);
  // The JSONL sink streamed while the run executed; configure() already
  // failed hard if it could not be opened.
  if (!opt.telemetry.events_jsonl.empty())
    std::printf("wrote %s\n", opt.telemetry.events_jsonl.c_str());
  return write_failed ? 2 : 0;
}

// Grid mode: expand the spec, run it through the orchestrator against the
// content-addressed store, and render the merged fig5/fig8 tables.
// Exit codes: 0 complete, 2 bad spec / store refusal, 3 when one or more
// cells permanently failed (the rest still completed and committed).
int run_grid_mode(const Options& opt) {
  orch::GridSpec grid;
  try {
    grid = orch::parse_grid_spec(opt.grid);
  } catch (const Error& e) {
    std::fprintf(stderr, "bad --grid spec: %s\n", e.what());
    return 2;
  }

  // Grid runs are the long-lived, crash-prone mode: arm the flight
  // recorder so failed cells and fatal signals leave a black box next to
  // the result store, where --resume debugging already looks.
  telemetry::set_flight_enabled(true);
  telemetry::set_flight_dir(opt.store_dir);
  telemetry::install_flight_signal_handlers();

  orch::ResultStore store(opt.store_dir);
  if (store.finished_cells() > 0 && !opt.resume) {
    std::fprintf(stderr,
                 "store %s already holds %zu finished cell(s); pass --resume "
                 "to reuse them or point --store-dir at a fresh directory\n",
                 opt.store_dir.c_str(), store.finished_cells());
    return 2;
  }

  telemetry::emit_event("cli.grid",
                        {{"spec", opt.grid},
                         {"store", opt.store_dir},
                         {"resume", opt.resume ? 1 : 0},
                         {"jobs", opt.jobs > 0 ? opt.jobs : hardware_jobs()}});

  PolicyZoo zoo;
  orch::GridOptions grid_opts;
  grid_opts.jobs = opt.jobs;
  grid_opts.deadline_ms = opt.deadline_ms;
  grid_opts.on_progress = [](int done, int total) {
    if (total >= 20 && done % std::max(1, total / 10) == 0) {
      std::printf("grid: %d/%d jobs\n", done, total);
      std::fflush(stdout);
    }
  };

  // Keep --metrics-out fresh while the grid runs so a separate terminal can
  // `adsec_top --json <path>` the live counters; the final authoritative
  // write still happens in finalize_telemetry().
  telemetry::PeriodicSnapshotWriter snapshots;
  if (opt.metrics_every_ms > 0) {
    snapshots.start(opt.telemetry.metrics_out, opt.metrics_every_ms);
  }

  orch::GridReport report;
  try {
    report = orch::run_grid(store, zoo, grid, grid_opts);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  snapshots.stop();

  Table summary({"cells", "count"});
  summary.add_row({"total", std::to_string(report.cells_total)});
  summary.add_row({"cached (resumed)", std::to_string(report.cells_cached)});
  summary.add_row({"computed", std::to_string(report.cells_computed)});
  summary.add_row({"failed", std::to_string(report.cells_failed)});
  summary.print();

  if (!report.failures.empty()) {
    Table failures({"job", "state", "class", "retries", "message"});
    for (const auto& f : report.failures) {
      failures.add_row({f.name, orch::to_string(f.state), f.error_class,
                        std::to_string(f.retries), f.message});
    }
    failures.print();
  }

  const orch::MergedTables tables = orch::merge_grid(store, grid);
  tables.fig5.print();
  tables.fig8.print();
  if (!opt.csv.empty()) {
    // --csv is a prefix in grid mode: two tables, two files.
    tables.fig5.write_csv(opt.csv + ".fig5.csv");
    tables.fig8.write_csv(opt.csv + ".fig8.csv");
    std::printf("wrote %s.fig5.csv and %s.fig8.csv\n", opt.csv.c_str(),
                opt.csv.c_str());
  }
  return report.complete() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  set_log_level(LogLevel::Warn);
  telemetry::set_thread_name("main");
  if (opt.checkpoint_every >= 0) {
    runtime_config().checkpoint_every = opt.checkpoint_every;
  }
  if (opt.telemetry.any() && !telemetry::configure(opt.telemetry)) {
    std::fprintf(stderr, "cannot open --log-json file '%s' for writing\n",
                 opt.telemetry.events_jsonl.c_str());
    return 2;
  }

  // --- grid mode ---
  if (!opt.grid.empty() || !opt.store_dir.empty() || opt.resume) {
    if (opt.grid.empty() || opt.store_dir.empty()) {
      std::fprintf(stderr, "--grid and --store-dir must be given together\n");
      usage(argv[0], 2);
    }
    const int code = run_grid_mode(opt);
    const int telemetry_code = finalize_telemetry(opt);
    return code != 0 ? code : telemetry_code;
  }

  telemetry::emit_event("cli.run",
                        {{"agent", opt.agent},
                         {"attacker", opt.attacker},
                         {"scenario", opt.scenario},
                         {"episodes", opt.episodes},
                         {"jobs", opt.jobs > 0 ? opt.jobs : hardware_jobs()},
                         {"lanes", opt.batch_lanes}});

  // --- spec resolution ---
  // The CLI and the evaluation server (src/serve) share one spec resolver,
  // so `--agent X --attacker Y` means exactly the same experiment as a
  // served request naming X and Y. resolve_spec returns factories rather
  // than instances: the parallel runtime builds one agent/attacker pair per
  // worker. A warm-up call below resolves any zoo training serially;
  // concurrent factory calls then only load the disk-cached policies.
  PolicyZoo zoo;
  serve::EvalRequest request;
  request.id = "cli";
  request.agent = opt.agent;
  request.attacker = opt.attacker;
  request.budget = opt.budget;
  request.scenario = opt.scenario;
  request.seed = opt.seed;
  request.episodes = opt.episodes;
  request.with_reference = opt.with_reference;
  serve::ResolvedSpec spec;
  try {
    spec = serve::resolve_spec(zoo, request);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const AgentFactory& agent_factory = spec.agent;
  const AttackerFactory& attacker_factory = spec.attacker;
  const ExperimentConfig& cfg = spec.config;

  // Warm the zoo cache serially (trains on first use) before workers fork.
  { auto warm = agent_factory(); }
  if (attacker_factory) { auto warm = attacker_factory(); }

  // --- run ---
  ParallelEvalOptions run_opts;
  run_opts.jobs = opt.jobs;
  run_opts.batch_lanes = opt.batch_lanes;
  run_opts.with_reference = opt.with_reference;
  ProgressMeter progress(opt.episodes, "episodes",
                         opt.episodes >= 20 ? std::max(1, opt.episodes / 10) : 0);
  run_opts.on_progress = [&progress](int, int) { progress.tick(); };
  telemetry::PeriodicSnapshotWriter snapshots;
  if (opt.metrics_every_ms > 0) {
    snapshots.start(opt.telemetry.metrics_out, opt.metrics_every_ms);
  }
  const auto ms = run_batch_parallel(agent_factory, attacker_factory, cfg,
                                     opt.episodes, opt.seed, run_opts);
  snapshots.stop();

  // Aggregate the ordered batch (deterministic regardless of --jobs).
  EpisodeAggregator agg;
  for (const auto& m : ms) agg.add(m);
  const RunningStats reward = agg.nominal_reward();
  const RunningStats adv = agg.adv_reward();
  const RunningStats passed = agg.passed_npcs();
  const RunningStats effort = agg.attack_effort();
  const RunningStats dev = agg.deviation_rmse();

  Table t({"metric", "value"});
  t.add_row({"agent", opt.agent});
  t.add_row({"attacker", opt.attacker + " @ " + fmt(opt.budget, 2)});
  t.add_row({"scenario", opt.scenario});
  t.add_row({"episodes", std::to_string(opt.episodes)});
  t.add_row({"jobs", std::to_string(opt.jobs > 0 ? opt.jobs : hardware_jobs())});
  if (opt.batch_lanes > 1) {
    t.add_row({"batch lanes", std::to_string(opt.batch_lanes)});
  }
  t.add_row({"mean nominal reward", fmt(reward.mean(), 1) + " ± " + fmt(reward.stdev(), 1)});
  t.add_row({"mean adversarial reward", fmt(adv.mean(), 2)});
  t.add_row({"mean passed NPCs", fmt(passed.mean(), 2)});
  t.add_row({"collisions (any)", std::to_string(agg.collisions())});
  t.add_row({"side collisions", std::to_string(agg.side_collisions())});
  t.add_row({"attack success rate", fmt_pct(success_rate(ms))});
  t.add_row({"mean attack effort", fmt(effort.mean(), 3)});
  if (dev.count() > 0) t.add_row({"mean deviation RMSE", fmt(dev.mean(), 3)});
  t.print();
  if (!opt.csv.empty()) {
    t.write_csv(opt.csv);
    std::printf("wrote %s\n", opt.csv.c_str());
  }
  return finalize_telemetry(opt);
}
